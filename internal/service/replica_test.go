package service

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"graphsketch/internal/stream"
)

// replicaNode is one in-process replica: a Server behind a real HTTP
// listener, so the syncer exercises the genuine wire path.
type replicaNode struct {
	srv *Server
	hs  *httptest.Server
	c   *Client
}

func newReplicaNode(t *testing.T, dir string) *replicaNode {
	t.Helper()
	cfg := testConfig(t)
	if dir != "" {
		cfg.Dir = dir
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if err := s.Preload(); err != nil {
		t.Fatalf("Preload: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	// Generous deadline: race-detector runs are 10-20x slower and a timed-out
	// retry of a POST that actually landed turns into a spurious 409.
	return &replicaNode{srv: s, hs: hs, c: &Client{Base: hs.URL, HC: hs.Client(), JitterSeed: 7, Timeout: 2 * time.Minute}}
}

func feedNode(t *testing.T, n *replicaNode, tenant string, ups []stream.Update) {
	t.Helper()
	pos, _, err := n.c.IngestStream(tenant, ups, 90)
	if err != nil || pos != len(ups) {
		t.Fatalf("feed: pos=%d err=%v", pos, err)
	}
}

// TestReplicaAntiEntropyConvergence is the core replication guarantee: a
// follower that missed EVERY pull converges to the primary's bit-identical
// payload in one anti-entropy round, the second round dedupes to a no-op,
// and the follower's reported position equals the primary's so a failover
// client re-feeds from the right point.
func TestReplicaAntiEntropyConvergence(t *testing.T) {
	primary := newReplicaNode(t, "")
	follower := newReplicaNode(t, "")
	st := bundleStream(31)
	feedNode(t, primary, "acme", st.Updates)

	want, wantPos, wantEpoch, err := primary.c.PayloadAt("acme")
	if err != nil {
		t.Fatalf("primary payload: %v", err)
	}
	if wantPos != len(st.Updates) || wantEpoch == 0 {
		t.Fatalf("primary pos=%d epoch=%d, want pos=%d epoch>0", wantPos, wantEpoch, len(st.Updates))
	}

	y := NewSyncer(follower.srv, SyncConfig{Peers: []string{primary.hs.URL}, Timeout: time.Minute, JitterSeed: 7})
	round := y.RunOnce(context.Background())
	if round.Failed != 0 || round.Applied != 1 || round.Pulled != 1 {
		t.Fatalf("round 1 = %+v, want 1 pull applied, 0 failed", round)
	}

	got, gotPos, gotEpoch, err := follower.c.PayloadAt("acme")
	if err != nil {
		t.Fatalf("follower payload: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("follower payload diverged: %d vs %d bytes", len(got), len(want))
	}
	if gotPos != wantPos {
		t.Fatalf("follower position %d, want primary's %d", gotPos, wantPos)
	}
	if gotEpoch == 0 {
		t.Fatal("follower serves epoch 0 after install")
	}

	// Round 2: positions are equal, nothing pulls, nothing applies.
	round = y.RunOnce(context.Background())
	if round.Pulled != 0 || round.Applied != 0 || round.Failed != 0 {
		t.Fatalf("round 2 = %+v, want pure probe (dedup)", round)
	}
	if met, _ := follower.c.Metrics(); met.SyncApplied != 1 || met.SyncRounds != 2 {
		t.Fatalf("metrics applied=%d rounds=%d, want 1 and 2", met.SyncApplied, met.SyncRounds)
	}
}

// TestReplicaSyncDurability: the installed payload is durable — reopening
// the follower's directory cold recovers the synced state bit-identically.
func TestReplicaSyncDurability(t *testing.T) {
	primary := newReplicaNode(t, "")
	fdir := t.TempDir()
	follower := newReplicaNode(t, fdir)
	st := bundleStream(32)
	feedNode(t, primary, "acme", st.Updates)

	y := NewSyncer(follower.srv, SyncConfig{Peers: []string{primary.hs.URL}, Timeout: time.Minute, JitterSeed: 7})
	if round := y.RunOnce(context.Background()); round.Applied != 1 {
		t.Fatalf("round = %+v, want 1 applied", round)
	}
	want, wantPos, _, err := follower.c.PayloadAt("acme")
	if err != nil {
		t.Fatal(err)
	}
	follower.srv.Drain(context.Background())
	follower.hs.Close()

	reborn := newReplicaNode(t, fdir)
	got, gotPos, _, err := reborn.c.PayloadAt("acme")
	if err != nil {
		t.Fatalf("recovered payload: %v", err)
	}
	if gotPos != wantPos || !bytes.Equal(got, want) {
		t.Fatalf("cold recovery diverged: pos %d vs %d, %d vs %d bytes", gotPos, wantPos, len(got), len(want))
	}
}

// TestReplicaMidStreamSync: the follower holds a strict prefix (it synced
// once, then the primary kept ingesting); the next round replace-installs
// the longer payload — positions move forward and bits match.
func TestReplicaMidStreamSync(t *testing.T) {
	primary := newReplicaNode(t, "")
	follower := newReplicaNode(t, "")
	st := bundleStream(33)
	half := len(st.Updates) / 2

	feedNode(t, primary, "acme", st.Updates[:half])
	y := NewSyncer(follower.srv, SyncConfig{Peers: []string{primary.hs.URL}, Timeout: time.Minute, JitterSeed: 7})
	if round := y.RunOnce(context.Background()); round.Applied != 1 {
		t.Fatalf("half-sync round = %+v", round)
	}

	// Primary advances; follower now lags and must report it on probe.
	if pos, err := primary.c.Ingest("acme", half, st.Updates[half:]); err != nil || pos != len(st.Updates) {
		t.Fatalf("second feed: pos=%d err=%v", pos, err)
	}
	y2 := NewSyncer(follower.srv, SyncConfig{Peers: []string{primary.hs.URL}, Timeout: time.Minute, JitterSeed: 7})
	if round := y2.RunOnce(context.Background()); round.Applied != 1 {
		t.Fatalf("catch-up round = %+v", round)
	}

	want, wantPos, _, _ := primary.c.PayloadAt("acme")
	got, gotPos, _, err := follower.c.PayloadAt("acme")
	if err != nil || gotPos != wantPos || !bytes.Equal(got, want) {
		t.Fatalf("catch-up diverged: pos %d vs %d, err=%v", gotPos, wantPos, err)
	}
}

// TestReplicaLagReported: a follower that is behind reports the peer's
// position and its own deficit in the footprint row BEFORE it catches up,
// and zeros the lag after the install.
func TestReplicaLagReported(t *testing.T) {
	primary := newReplicaNode(t, "")
	follower := newReplicaNode(t, "")
	st := bundleStream(34)
	feedNode(t, primary, "acme", st.Updates)

	// Probe-only round: block the pull by giving the syncer a peer list
	// where the payload fetch fails — simplest is to sync once against a
	// peer that answers position but whose payload we never fetch. Instead,
	// drive the probe path directly: one RunOnce with the real peer, then
	// inspect footprint AFTER the apply (lag zeroed), plus a manual probe
	// before. The pre-install lag is asserted via the tenant mirrors.
	lt, err := follower.srv.Tenant("acme", true)
	if err != nil {
		t.Fatal(err)
	}
	y := NewSyncer(follower.srv, SyncConfig{Peers: []string{primary.hs.URL}, Timeout: time.Minute, JitterSeed: 7})

	// Hand-run the probe half: peer position lands in the mirrors.
	pi, err := y.peers[0].client.PositionEx("acme")
	if err != nil {
		t.Fatal(err)
	}
	lt.replPeerPos.Store(int64(pi.Acked))
	fp, err := follower.c.Footprint("acme")
	if err != nil {
		t.Fatal(err)
	}
	if fp.ReplPeerPos != len(st.Updates) || fp.ReplUpdatesBehind != len(st.Updates) {
		t.Fatalf("pre-sync lag: peer_pos=%d behind=%d, want both %d", fp.ReplPeerPos, fp.ReplUpdatesBehind, len(st.Updates))
	}

	if round := y.RunOnce(context.Background()); round.Applied != 1 {
		t.Fatalf("round = %+v", round)
	}
	fp, err = follower.c.Footprint("acme")
	if err != nil {
		t.Fatal(err)
	}
	if fp.ReplUpdatesBehind != 0 || fp.ReplEpochsBehind != 0 || fp.ReplBytesPending != 0 {
		t.Fatalf("post-sync lag not zeroed: %+v", fp)
	}
	if fp.ReplSyncEpoch == 0 {
		t.Fatal("post-sync footprint should stamp the applied epoch")
	}
}

// TestReplicaPartitionedPeer: a dead peer costs one Failed probe per
// tenant per round and never wedges the loop; after the peer "heals"
// (a live server appears), the next round converges as usual.
func TestReplicaPartitionedPeer(t *testing.T) {
	follower := newReplicaNode(t, "")
	if _, err := follower.srv.Tenant("acme", true); err != nil {
		t.Fatal(err)
	}
	dead := deadEndpoint(t)
	y := NewSyncer(follower.srv, SyncConfig{Peers: []string{dead}, Timeout: time.Minute, JitterSeed: 7})
	round := y.RunOnce(context.Background())
	if round.Failed != 1 || round.Pulled != 0 {
		t.Fatalf("partitioned round = %+v, want exactly 1 failed probe", round)
	}

	primary := newReplicaNode(t, "")
	st := bundleStream(35)
	feedNode(t, primary, "acme", st.Updates)
	healed := NewSyncer(follower.srv, SyncConfig{Peers: []string{dead, primary.hs.URL}, Timeout: time.Minute, JitterSeed: 7})
	round = healed.RunOnce(context.Background())
	if round.Applied != 1 {
		t.Fatalf("healed round = %+v, want 1 applied despite the dead peer", round)
	}
	want, _, _, _ := primary.c.PayloadAt("acme")
	got, _, _, err := follower.c.PayloadAt("acme")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("healed convergence failed: err=%v", err)
	}
}

// TestReplicaSyncRejectsCorruptPayload: a corrupt sync body must not
// disturb durable state and must count as a sync failure.
func TestReplicaSyncRejectsCorruptPayload(t *testing.T) {
	node := newReplicaNode(t, "")
	st := bundleStream(36)
	feedNode(t, node, "acme", st.Updates)
	want, wantPos, _, _ := node.c.PayloadAt("acme")

	junk := append([]byte(nil), want...)
	junk[len(junk)/2] ^= 0x40
	if _, err := node.c.Sync("acme", wantPos+1000, 99, junk); err == nil {
		t.Fatal("corrupt sync payload accepted")
	}
	got, gotPos, _, err := node.c.PayloadAt("acme")
	if err != nil || gotPos != wantPos || !bytes.Equal(got, want) {
		t.Fatalf("corrupt sync disturbed state: pos %d vs %d, err=%v", gotPos, wantPos, err)
	}
	if met, _ := node.c.Metrics(); met.SyncFailed == 0 {
		t.Fatal("corrupt sync not counted in sync_failed")
	}
}

// TestReplicaReadyz: /readyz is 503 until Preload has recovered on-disk
// tenants and 503 again once draining; /healthz stays 200 throughout the
// recovering window.
func TestReplicaReadyz(t *testing.T) {
	dir := t.TempDir()
	seeded := newReplicaNode(t, dir)
	st := bundleStream(37)
	feedNode(t, seeded, "acme", st.Updates)
	if _, err := seeded.c.Flush("acme"); err != nil {
		t.Fatal(err)
	}
	seeded.srv.Drain(context.Background())
	seeded.hs.Close()

	cfg := testConfig(t)
	cfg.Dir = dir
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	c := &Client{Base: hs.URL, HC: hs.Client(), Attempts: 1, JitterSeed: 7}

	if err := c.Healthz(); err != nil {
		t.Fatalf("healthz before preload: %v", err)
	}
	if err := c.Readyz(); err == nil {
		t.Fatal("readyz should 503 before Preload")
	}
	if err := s.Preload(); err != nil {
		t.Fatalf("Preload: %v", err)
	}
	if err := c.Readyz(); err != nil {
		t.Fatalf("readyz after preload: %v", err)
	}
	// Preload recovered the on-disk tenant: queries work with zero re-feed.
	fp, err := c.Footprint("acme")
	if err != nil || fp.Acked != len(st.Updates) {
		t.Fatalf("preloaded tenant: acked=%d err=%v, want %d", fp.Acked, err, len(st.Updates))
	}
	s.Drain(context.Background())
	if err := c.Readyz(); err == nil {
		t.Fatal("readyz should 503 while draining")
	}
}

// TestReplicaSpannerEdge: the membership query answers true for every
// edge the spanner retained (cross-checked against the full spanner row's
// count by sampling) and false for an absent pair, with query metadata
// served from the same epoch snapshot.
func TestReplicaSpannerEdge(t *testing.T) {
	node := newReplicaNode(t, "")
	st := bundleStream(38)
	feedNode(t, node, "acme", st.Updates)

	full, err := node.c.Spanner("acme")
	if err != nil {
		t.Fatalf("spanner: %v", err)
	}
	if full.Edges == 0 {
		t.Fatal("spanner kept no edges; test stream too sparse")
	}

	// Walk vertex pairs until we find a retained edge; every hit must agree
	// with the full row's stretch bound and edge count.
	n := node.srv.cfg.Bundle.N
	found := 0
	for u := 0; u < n && found == 0; u++ {
		for v := u + 1; v < n; v++ {
			resp, err := node.c.SpannerEdge("acme", u, v)
			if err != nil {
				t.Fatalf("spanner-edge(%d,%d): %v", u, v, err)
			}
			if resp.Edges != full.Edges || resp.StretchBound != full.StretchBound {
				t.Fatalf("edge row disagrees with full row: %+v vs %+v", resp, full)
			}
			if resp.InSpanner {
				found++
				break
			}
		}
	}
	if found == 0 {
		t.Fatal("no retained edge found via membership query")
	}
	// Self-loops are never retained.
	resp, err := node.c.SpannerEdge("acme", 0, 0)
	if err != nil {
		t.Fatalf("spanner-edge(0,0): %v", err)
	}
	if resp.InSpanner {
		t.Fatal("self-loop reported in spanner")
	}
	// Out-of-range vertices are a 400, not a panic.
	if _, err := node.c.SpannerEdge("acme", 0, n+100); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
}
