// Package service is the concurrent multi-tenant sketch service: a
// registry of tenant bundles, each fed by a single-writer ingest loop with
// a bounded queue, durable through a disk-backed WAL, and queryable
// against epoch-cloned snapshots that never block ingest. Everything in
// the service leans on AGM linearity: durable replay is bit-identical to
// the lost state, epoch clones are true point-in-time copies, and re-feeds
// from the durable position are exact, not approximate.
package service

import (
	"bytes"
	"fmt"
	"math"

	"graphsketch"
	"graphsketch/internal/stream"
	"graphsketch/internal/wire"
)

// BundleConfig fixes a tenant's sketch shape. Every replica (and every
// recovery) must use the same config — the compact payload pins it so a
// mismatched merge fails loudly instead of aliasing hash space.
type BundleConfig struct {
	// N is the vertex universe size.
	N int `json:"n"`
	// K is the min-cut sketch's edge-connectivity bound (NewMinCutSketchK).
	K int `json:"k"`
	// Eps is the sparsifier's accuracy parameter.
	Eps float64 `json:"eps"`
	// SpannerK is the Baswana–Sen stretch parameter (spanner queries build
	// a (2k-1)-spanner from the bundle's coalesced update log).
	SpannerK int `json:"spanner_k"`
	// Seed derives all hash functions.
	Seed uint64 `json:"seed"`
}

// DefaultBundleConfig sizes a bundle for interactive use on n vertices.
func DefaultBundleConfig(n int, seed uint64) BundleConfig {
	return BundleConfig{N: n, K: 6, Eps: 1.0, SpannerK: 2, Seed: seed}
}

// Bundle is one tenant's sketch state: a min-cut sketch, a cut sparsifier,
// and a coalesced update log for multi-pass spanner construction. It
// implements runtime.Sketch, so the WAL machinery recovers it
// bit-identically, plus Clone for epoch snapshots and Footprint for
// budget accounting.
type Bundle struct {
	cfg BundleConfig
	mc  *graphsketch.MinCutSketch
	sp  *graphsketch.SimpleSparsifier
	// spLog is the coalesced live edge set as a replayable stream — the
	// Baswana–Sen construction is r-adaptive (multi-pass), so it cannot run
	// off a linear sketch alone. Appends accumulate and re-coalesce once
	// the log doubles, keeping it O(live edges), not O(stream length).
	spLog     []stream.Update
	coalesced int // prefix length known coalesced

	// Digest cache: one manifest leaf per bank plus a dirty flag, so epoch
	// publication recomputes only the banks a batch touched. Sketch banks
	// use the conservative BatchMaxLevel bound (an update at level l dirties
	// levels 0..l); log chunks are dirtied exactly by edge-index keying.
	// Lazily allocated on first Manifest call.
	dig      []wire.BankRef
	digDirty []bool
}

// NewBundle creates an empty bundle with the given shape.
func NewBundle(cfg BundleConfig) *Bundle {
	return &Bundle{
		cfg: cfg,
		mc:  graphsketch.NewMinCutSketchK(cfg.N, cfg.K, cfg.Seed),
		sp:  graphsketch.NewSimpleSparsifier(cfg.N, cfg.Eps, cfg.Seed),
	}
}

// Config returns the bundle's shape.
func (b *Bundle) Config() BundleConfig { return b.cfg }

// UpdateBatch applies one batch to every member sketch and the spanner log.
func (b *Bundle) UpdateBatch(ups []stream.Update) {
	if len(ups) == 0 {
		return
	}
	b.markBatchDirty(ups)
	b.mc.UpdateBatch(ups)
	b.sp.UpdateBatch(ups)
	b.spLog = append(b.spLog, ups...)
	if len(b.spLog) >= 64 && len(b.spLog) >= 2*b.coalesced {
		b.coalesceLog()
	}
}

// coalesceLog rewrites the spanner log as the sorted net edge set.
func (b *Bundle) coalesceLog() {
	if b.coalesced == len(b.spLog) {
		return
	}
	co := (&stream.Stream{N: b.cfg.N, Updates: b.spLog}).Coalesce()
	b.spLog = co.Updates
	b.coalesced = len(co.Updates)
}

// Clone deep-copies the bundle — the epoch-snapshot primitive. The clone
// shares nothing mutable with the original, so queries against it never
// block (or observe) ingest. The digest cache is carried over (it describes
// the same state).
func (b *Bundle) Clone() *Bundle {
	return &Bundle{
		cfg:       b.cfg,
		mc:        b.mc.Clone(),
		sp:        b.sp.Clone(),
		spLog:     append([]stream.Update(nil), b.spLog...),
		coalesced: b.coalesced,
		dig:       append([]wire.BankRef(nil), b.dig...),
		digDirty:  append([]bool(nil), b.digDirty...),
	}
}

// MinCut estimates the global min cut from the bundle's epoch state.
func (b *Bundle) MinCut() (graphsketch.MinCutResult, error) { return b.mc.MinCut() }

// Sparsify recovers the cut sparsifier's graph.
func (b *Bundle) Sparsify() (*graphsketch.Graph, error) { return b.sp.Sparsify() }

// Spanner builds a (2k-1)-spanner from the coalesced update log. The log's
// vertex range is validated here, not at decode time: a merged payload
// vouches for its own section, and this is the deliberate corrupt-payload
// fixture the service's panic-isolation middleware is tested against.
func (b *Bundle) Spanner() graphsketch.SpannerResult {
	// Range-check before coalescing: the edge-index round-trip inside
	// Coalesce is only a bijection on in-range vertices, so an out-of-range
	// entry must be caught while it is still recognizable.
	for _, u := range b.spLog {
		if u.U < 0 || u.U >= b.cfg.N || u.V < 0 || u.V >= b.cfg.N {
			panic(fmt.Sprintf("service: corrupt spanner log: vertex (%d,%d) out of range [0,%d)", u.U, u.V, b.cfg.N))
		}
	}
	b.coalesceLog()
	st := &stream.Stream{N: b.cfg.N, Updates: b.spLog}
	return graphsketch.BaswanaSenSpanner(st, b.cfg.SpannerK, b.cfg.Seed)
}

// Footprint accumulates the member sketches' resident/wire sizes plus the
// spanner log (24 bytes per buffered update).
func (b *Bundle) Footprint() graphsketch.Footprint {
	fp := b.mc.Footprint()
	fp.Accum(b.sp.Footprint())
	fp.ResidentBytes += int64(len(b.spLog)) * 24
	return fp
}

// ResidentBytes is the budget-accounting scalar (admission control and
// evict-coldest run on it).
func (b *Bundle) ResidentBytes() int64 { return b.Footprint().ResidentBytes }

// ---------------------------------------------------------------------------
// Banked payload (v2) and the digest tree
// ---------------------------------------------------------------------------
//
// A bundle's wire state decomposes into an ordered list of BANKS, the unit
// the digest tree and delta anti-entropy address:
//
//	[0, mcBanks)                     min-cut subsampling levels, compact
//	[mcBanks, mcBanks+spBanks)       sparsifier sampling levels, compact
//	[mcBanks+spBanks, +logBankCount) spanner-log chunks keyed by
//	                                 EdgeIndex(u,v,N) % logBankCount
//
// Sketch banks are headerless tagged cell states (AppendBank); log chunks
// are uvarint count + (u, v, zigzag delta) triples over the COALESCED log,
// so every bank encoding is canonical for its state. The payload is:
//
//	config header  5 uvarints (N, K, Eps bits, SpannerK, Seed)
//	totalBanks     uvarint
//	presentCount   uvarint
//	present        presentCount × { id uvarint, len uvarint, bytes }
//	manifest       GSD1 over ALL totalBanks banks
//
// A full payload carries every bank (snapshots, /payload, sync installs); a
// delta payload carries only the banks a peer asked for, but always the
// full manifest — the receiver verifies every present bank against its
// leaf, and every absent bank against its own local bytes, before trusting
// a bank-granular install.

// ErrDigestMismatch reports state bytes that contradict a digest-tree
// leaf — silent corruption, never a crash artifact (those are torn tails).
var ErrDigestMismatch = fmt.Errorf("service: digest mismatch")

// ErrDeltaInsufficient reports a delta payload that cannot reconstruct the
// sender's state (local divergence outside the carried banks, or the
// assembled root disagreeing). The remedy is a full-payload pull.
var ErrDeltaInsufficient = fmt.Errorf("service: delta payload insufficient")

// logBankCount is the spanner-log chunk fan-out. Eight chunks keeps any
// single log bank's share of the payload small (the delta-repair unit)
// without fragmenting tiny logs into empty sections.
const logBankCount = 8

// logChunk keys an update to its log bank by canonical edge index.
func logChunk(u stream.Update, n int) int {
	return int(stream.EdgeIndex(u.U, u.V, n) % logBankCount)
}

// NumBanks reports the bundle's digest-tree width.
func (b *Bundle) NumBanks() int {
	return b.mc.NumBanks() + b.sp.NumBanks() + logBankCount
}

// markBatchDirty invalidates the digest-cache leaves a batch can touch.
// No-op until the cache exists (first Manifest call pays full price).
func (b *Bundle) markBatchDirty(ups []stream.Update) {
	if b.digDirty == nil {
		return
	}
	mcN, spN := b.mc.NumBanks(), b.sp.NumBanks()
	for l := b.mc.BatchMaxLevel(ups); l >= 0; l-- {
		b.digDirty[l] = true
	}
	for l := b.sp.BatchMaxLevel(ups); l >= 0; l-- {
		b.digDirty[mcN+l] = true
	}
	for _, u := range ups {
		b.digDirty[mcN+spN+logChunk(u, b.cfg.N)] = true
	}
}

// markAllDirty drops every cached leaf (wholesale state changes: merge,
// bank install, unmarshal).
func (b *Bundle) markAllDirty() {
	for i := range b.digDirty {
		b.digDirty[i] = true
	}
}

// appendBank appends bank id's canonical bytes. The spanner log must
// already be coalesced when a log bank is encoded.
func (b *Bundle) appendBank(buf []byte, id int) ([]byte, error) {
	mcN, spN := b.mc.NumBanks(), b.sp.NumBanks()
	switch {
	case id < 0 || id >= mcN+spN+logBankCount:
		return nil, fmt.Errorf("service: bank %d out of [0,%d): %w", id, b.NumBanks(), graphsketch.ErrBadEncoding)
	case id < mcN:
		return b.mc.AppendBank(buf, id)
	case id < mcN+spN:
		return b.sp.AppendBank(buf, id-mcN)
	}
	chunk := id - mcN - spN
	count := 0
	for _, u := range b.spLog {
		if logChunk(u, b.cfg.N) == chunk {
			count++
		}
	}
	buf = wire.AppendUvarint(buf, uint64(count))
	for _, u := range b.spLog {
		if logChunk(u, b.cfg.N) == chunk {
			buf = wire.AppendUvarint(buf, uint64(u.U))
			buf = wire.AppendUvarint(buf, uint64(u.V))
			buf = wire.AppendUvarint(buf, wire.Zigzag(u.Delta))
		}
	}
	return buf, nil
}

// decodeLogBank inverts the log-chunk encoding, consuming data fully.
func decodeLogBank(data []byte) ([]stream.Update, error) {
	count, data, err := wire.Uvarint(data)
	if err != nil || count > uint64(len(data)) {
		return nil, fmt.Errorf("service: log bank: %w", graphsketch.ErrBadEncoding)
	}
	ups := make([]stream.Update, 0, count)
	for i := uint64(0); i < count; i++ {
		var u, v, zd uint64
		if u, data, err = wire.Uvarint(data); err != nil {
			return nil, fmt.Errorf("service: log bank: %w", err)
		}
		if v, data, err = wire.Uvarint(data); err != nil {
			return nil, fmt.Errorf("service: log bank: %w", err)
		}
		if zd, data, err = wire.Uvarint(data); err != nil {
			return nil, fmt.Errorf("service: log bank: %w", err)
		}
		ups = append(ups, stream.Update{U: int(u), V: int(v), Delta: wire.Unzigzag(zd)})
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("service: log bank trailing bytes: %w", graphsketch.ErrBadEncoding)
	}
	return ups, nil
}

// refreshDigests brings the digest cache current: coalesce the log (log
// leaves digest canonical chunk bytes), then re-encode and re-digest every
// dirty bank. First call builds the cache wholesale.
func (b *Bundle) refreshDigests() error {
	b.coalesceLog()
	if b.dig == nil {
		b.dig = make([]wire.BankRef, b.NumBanks())
		b.digDirty = make([]bool, b.NumBanks())
		b.markAllDirty()
	}
	var scratch []byte
	for id := range b.dig {
		if !b.digDirty[id] {
			continue
		}
		bankB, err := b.appendBank(scratch[:0], id)
		if err != nil {
			return err
		}
		scratch = bankB
		b.dig[id] = wire.BankRef{Len: uint64(len(bankB)), Digest: wire.BankDigest(bankB)}
		b.digDirty[id] = false
	}
	return nil
}

// Manifest returns the bundle's current digest tree (a copy; callers may
// hold it across further updates).
func (b *Bundle) Manifest() (wire.Manifest, error) {
	if err := b.refreshDigests(); err != nil {
		return wire.Manifest{}, err
	}
	return wire.Manifest{Banks: append([]wire.BankRef(nil), b.dig...)}, nil
}

// VerifyDigests is the scrubber's live-state check: re-encode EVERY bank
// and compare against the cached manifest leaves. A clean (non-dirty) leaf
// that no longer matches its bank's bytes means the in-memory state or its
// cache rotted since the last epoch publication — something no update path
// can cause. Returns ErrDigestMismatch (wrapped) naming the first diverged
// bank; the cache is left untouched so repair logic can still read the
// pre-rot manifest.
func (b *Bundle) VerifyDigests() error {
	if b.dig == nil {
		return nil // nothing published yet, nothing to contradict
	}
	b.coalesceLog()
	var scratch []byte
	for id := range b.dig {
		if b.digDirty[id] {
			continue // not yet published; nothing to verify against
		}
		bankB, err := b.appendBank(scratch[:0], id)
		if err != nil {
			return err
		}
		scratch = bankB
		ref := wire.BankRef{Len: uint64(len(bankB)), Digest: wire.BankDigest(bankB)}
		if ref != b.dig[id] {
			return fmt.Errorf("service: bank %d digest mismatch (live %x/%d, manifest %x/%d): %w",
				id, ref.Digest, ref.Len, b.dig[id].Digest, b.dig[id].Len, ErrDigestMismatch)
		}
	}
	return nil
}

// appendConfigHeader writes the 5-uvarint config header.
func (b *Bundle) appendConfigHeader(buf []byte) []byte {
	buf = wire.AppendUvarint(buf, uint64(b.cfg.N))
	buf = wire.AppendUvarint(buf, uint64(b.cfg.K))
	buf = wire.AppendUvarint(buf, math.Float64bits(b.cfg.Eps))
	buf = wire.AppendUvarint(buf, uint64(b.cfg.SpannerK))
	return wire.AppendUvarint(buf, b.cfg.Seed)
}

// MarshalBanks encodes a banked payload carrying the requested banks (ids
// ascending, duplicates ignored) plus the full manifest. nil asks for every
// bank — the full payload MarshalBinaryCompact returns.
func (b *Bundle) MarshalBanks(ids []int) ([]byte, error) {
	if err := b.refreshDigests(); err != nil {
		return nil, err
	}
	total := b.NumBanks()
	want := make([]bool, total)
	if ids == nil {
		for i := range want {
			want[i] = true
		}
	} else {
		for _, id := range ids {
			if id < 0 || id >= total {
				return nil, fmt.Errorf("service: bank %d out of [0,%d): %w", id, total, graphsketch.ErrBadEncoding)
			}
			want[id] = true
		}
	}
	present := 0
	for _, w := range want {
		if w {
			present++
		}
	}
	out := b.appendConfigHeader(nil)
	out = wire.AppendUvarint(out, uint64(total))
	out = wire.AppendUvarint(out, uint64(present))
	for id := 0; id < total; id++ {
		if !want[id] {
			continue
		}
		out = wire.AppendUvarint(out, uint64(id))
		out = wire.AppendUvarint(out, b.dig[id].Len)
		var err error
		if out, err = b.appendBank(out, id); err != nil {
			return nil, err
		}
	}
	return wire.AppendManifest(out, wire.Manifest{Banks: b.dig}), nil
}

// MarshalBinaryCompact encodes the full banked payload: config header,
// every bank, and the digest manifest. The encoding is canonical (sketch
// banks marshal canonically, the log is coalesced and sorted first), which
// is what makes bit-identity assertions meaningful end to end.
func (b *Bundle) MarshalBinaryCompact() ([]byte, error) {
	return b.MarshalBanks(nil)
}

// bundlePayload is a decoded banked payload: which banks are present (by
// id, bytes aliasing the input) and the full manifest, all digest-verified.
type bundlePayload struct {
	total   int
	present map[int][]byte
	man     wire.Manifest
}

// decodePayload validates a banked payload against this bundle's config
// and shape, verifying every present bank's bytes against its manifest
// leaf. Corruption anywhere — config mismatch, bank out of order, digest
// mismatch, trailing bytes — errors without touching bundle state.
func (b *Bundle) decodePayload(data []byte) (*bundlePayload, error) {
	hdr := []uint64{uint64(b.cfg.N), uint64(b.cfg.K), math.Float64bits(b.cfg.Eps), uint64(b.cfg.SpannerK), b.cfg.Seed}
	for _, wantV := range hdr {
		got, rest, err := wire.Uvarint(data)
		if err != nil {
			return nil, fmt.Errorf("service: bundle header: %w", err)
		}
		if got != wantV {
			return nil, fmt.Errorf("service: bundle config mismatch (%d != %d): %w", got, wantV, graphsketch.ErrBadEncoding)
		}
		data = rest
	}
	total, data, err := wire.Uvarint(data)
	if err != nil {
		return nil, fmt.Errorf("service: bundle bank count: %w", err)
	}
	if total != uint64(b.NumBanks()) {
		return nil, fmt.Errorf("service: bundle has %d banks, want %d: %w", total, b.NumBanks(), graphsketch.ErrBadEncoding)
	}
	presentCount, data, err := wire.Uvarint(data)
	if err != nil || presentCount > total {
		return nil, fmt.Errorf("service: bundle present count: %w", graphsketch.ErrBadEncoding)
	}
	p := &bundlePayload{total: int(total), present: make(map[int][]byte, presentCount)}
	prev := -1
	for i := uint64(0); i < presentCount; i++ {
		id, rest, err := wire.Uvarint(data)
		if err != nil {
			return nil, fmt.Errorf("service: bundle bank id: %w", err)
		}
		if int64(id) <= int64(prev) || id >= total {
			return nil, fmt.Errorf("service: bundle bank ids not ascending: %w", graphsketch.ErrBadEncoding)
		}
		prev = int(id)
		n, rest, err := wire.Uvarint(rest)
		if err != nil || n > uint64(len(rest)) {
			return nil, fmt.Errorf("service: bundle bank %d length: %w", id, graphsketch.ErrBadEncoding)
		}
		p.present[int(id)] = rest[:n]
		data = rest[n:]
	}
	p.man, data, err = wire.DecodeManifest(data)
	if err != nil {
		return nil, fmt.Errorf("service: bundle manifest: %w", err)
	}
	if len(p.man.Banks) != p.total {
		return nil, fmt.Errorf("service: bundle manifest covers %d banks, want %d: %w", len(p.man.Banks), p.total, graphsketch.ErrBadEncoding)
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("service: bundle trailing bytes: %w", graphsketch.ErrBadEncoding)
	}
	// Every present bank must match its manifest leaf — a flipped bit in
	// either the bank bytes or the manifest fails here (the manifest's own
	// root check already vouched for its internal consistency).
	for id, bankB := range p.present {
		ref := p.man.Banks[id]
		if ref.Len != uint64(len(bankB)) || ref.Digest != wire.BankDigest(bankB) {
			return nil, fmt.Errorf("service: bundle bank %d bytes contradict manifest: %w", id, ErrDigestMismatch)
		}
	}
	return p, nil
}

// MergeBytes folds an encoded FULL bundle payload into this one (linear:
// sketch states add, spanner logs concatenate and re-coalesce). The config
// header must match exactly, every bank must be present and digest-clean.
// The log banks' vertex range is deliberately trusted here and checked at
// Spanner() time — see there.
func (b *Bundle) MergeBytes(data []byte) error {
	p, err := b.decodePayload(data)
	if err != nil {
		return err
	}
	if len(p.present) != p.total {
		return fmt.Errorf("service: merge needs a full payload (%d/%d banks): %w", len(p.present), p.total, graphsketch.ErrBadEncoding)
	}
	// Merge into clones and swap, so a corrupt bank payload cannot leave
	// the bundle half-merged.
	mcN, spN := b.mc.NumBanks(), b.sp.NumBanks()
	mc2, sp2 := b.mc.Clone(), b.sp.Clone()
	var logUps []stream.Update
	for id := 0; id < p.total; id++ {
		bankB := p.present[id]
		switch {
		case id < mcN:
			err = mc2.MergeBank(id, bankB)
		case id < mcN+spN:
			err = sp2.MergeBank(id-mcN, bankB)
		default:
			var ups []stream.Update
			if ups, err = decodeLogBank(bankB); err == nil {
				logUps = append(logUps, ups...)
			}
		}
		if err != nil {
			return err
		}
	}
	b.mc, b.sp = mc2, sp2
	b.spLog = append(b.spLog, logUps...)
	b.coalesced = 0
	b.markAllDirty()
	return nil
}

// InstallBanks replace-installs a banked payload: present banks overwrite
// the local ones; absent banks keep their local bytes, which is only sound
// when those bytes are already identical to the sender's — enforced by
// requiring every absent bank's CURRENT local leaf to equal the payload
// manifest's. After installing, the assembled state's recomputed root must
// equal the payload root, or the install is rolled back (clone-and-swap)
// with ErrDeltaInsufficient — the caller falls back to a full pull.
func (b *Bundle) InstallBanks(data []byte) error {
	p, err := b.decodePayload(data)
	if err != nil {
		return err
	}
	if err := b.refreshDigests(); err != nil {
		return err
	}
	for id := 0; id < p.total; id++ {
		if _, ok := p.present[id]; ok {
			continue
		}
		if b.dig[id] != p.man.Banks[id] {
			return fmt.Errorf("service: bank %d diverges locally but is absent from delta payload: %w", id, ErrDeltaInsufficient)
		}
	}
	// Assemble on a clone: replaced sketch banks decode in place, replaced
	// log chunks splice into the coalesced log.
	mcN, spN := b.mc.NumBanks(), b.sp.NumBanks()
	fresh := b.Clone()
	logTouched := false
	for id := 0; id < p.total; id++ {
		bankB, ok := p.present[id]
		if !ok {
			continue
		}
		switch {
		case id < mcN:
			err = fresh.mc.ReplaceBank(id, bankB)
		case id < mcN+spN:
			err = fresh.sp.ReplaceBank(id-mcN, bankB)
		default:
			chunk := id - mcN - spN
			var ups []stream.Update
			if ups, err = decodeLogBank(bankB); err == nil {
				kept := fresh.spLog[:0]
				for _, u := range fresh.spLog {
					if logChunk(u, b.cfg.N) != chunk {
						kept = append(kept, u)
					}
				}
				fresh.spLog = append(kept, ups...)
				logTouched = true
			}
		}
		if err != nil {
			return err
		}
	}
	if logTouched {
		fresh.coalesced = 0 // re-sort: spliced chunks broke the order
	}
	fresh.markAllDirty()
	if err := fresh.refreshDigests(); err != nil {
		return err
	}
	got := wire.Manifest{Banks: fresh.dig}
	if got.Root() != p.man.Root() {
		return fmt.Errorf("service: assembled state root %x != payload root %x: %w", got.Root(), p.man.Root(), ErrDeltaInsufficient)
	}
	*b = *fresh
	return nil
}

// RecomputeDigests rebuilds every manifest leaf from the live bytes,
// discarding the cache. The repair path uses it so the local manifest
// reflects rotted reality before diffing against a peer's — a cached
// pre-rot leaf would hide exactly the bank that needs pulling.
func (b *Bundle) RecomputeDigests() error {
	b.markAllDirty()
	return b.refreshDigests()
}

// InjectBankRot deterministically corrupts one bank's live in-memory state
// WITHOUT touching the digest cache — the chaos hook the scrub tests and
// the sim's bit-rot matrix use to model silent memory rot. Sketch banks
// absorb a synthetic nonzero single-edge state (linearity keeps the bytes
// decodable while guaranteeing the canonical encoding changes); log chunks
// gain a phantom update keyed to the chunk.
func (b *Bundle) InjectBankRot(bank int, seed uint64) error {
	mcN, spN := b.mc.NumBanks(), b.sp.NumBanks()
	if bank < 0 || bank >= b.NumBanks() {
		return fmt.Errorf("service: bank %d out of [0,%d): %w", bank, b.NumBanks(), graphsketch.ErrBadEncoding)
	}
	if bank >= mcN+spN {
		chunk := bank - mcN - spN
		for i := uint64(0); ; i++ {
			u := stream.Update{U: int((seed + i) % uint64(b.cfg.N)), V: int((seed + i + 1) % uint64(b.cfg.N)), Delta: 1}
			if u.U != u.V && logChunk(u, b.cfg.N) == chunk {
				b.spLog = append(b.spLog, u)
				b.coalesced = 0
				return nil
			}
		}
	}
	// Feed synthetic edges into a scratch bundle until the target bank's
	// state is nonzero (an update only reaches subsampling level l with
	// probability 2^-l, so high banks need a few tries), then fold exactly
	// that bank into b.
	emptyB, err := NewBundle(b.cfg).appendBank(nil, bank)
	if err != nil {
		return err
	}
	tmp := NewBundle(b.cfg)
	for i := 0; i < 1<<14; i++ {
		u := int((seed + uint64(i)) % uint64(b.cfg.N))
		v := (u + 1 + i%(b.cfg.N-1)) % b.cfg.N
		if u == v {
			continue
		}
		up := []stream.Update{{U: u, V: v, Delta: 1}}
		tmp.mc.UpdateBatch(up)
		tmp.sp.UpdateBatch(up)
		bankB, err := tmp.appendBank(nil, bank)
		if err != nil {
			return err
		}
		if !bytes.Equal(bankB, emptyB) {
			if bank < mcN {
				return b.mc.MergeBank(bank, bankB)
			}
			return b.sp.MergeBank(bank-mcN, bankB)
		}
	}
	return fmt.Errorf("service: could not synthesize rot for bank %d", bank)
}
