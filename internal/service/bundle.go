// Package service is the concurrent multi-tenant sketch service: a
// registry of tenant bundles, each fed by a single-writer ingest loop with
// a bounded queue, durable through a disk-backed WAL, and queryable
// against epoch-cloned snapshots that never block ingest. Everything in
// the service leans on AGM linearity: durable replay is bit-identical to
// the lost state, epoch clones are true point-in-time copies, and re-feeds
// from the durable position are exact, not approximate.
package service

import (
	"fmt"
	"math"

	"graphsketch"
	"graphsketch/internal/stream"
	"graphsketch/internal/wire"
)

// BundleConfig fixes a tenant's sketch shape. Every replica (and every
// recovery) must use the same config — the compact payload pins it so a
// mismatched merge fails loudly instead of aliasing hash space.
type BundleConfig struct {
	// N is the vertex universe size.
	N int `json:"n"`
	// K is the min-cut sketch's edge-connectivity bound (NewMinCutSketchK).
	K int `json:"k"`
	// Eps is the sparsifier's accuracy parameter.
	Eps float64 `json:"eps"`
	// SpannerK is the Baswana–Sen stretch parameter (spanner queries build
	// a (2k-1)-spanner from the bundle's coalesced update log).
	SpannerK int `json:"spanner_k"`
	// Seed derives all hash functions.
	Seed uint64 `json:"seed"`
}

// DefaultBundleConfig sizes a bundle for interactive use on n vertices.
func DefaultBundleConfig(n int, seed uint64) BundleConfig {
	return BundleConfig{N: n, K: 6, Eps: 1.0, SpannerK: 2, Seed: seed}
}

// Bundle is one tenant's sketch state: a min-cut sketch, a cut sparsifier,
// and a coalesced update log for multi-pass spanner construction. It
// implements runtime.Sketch, so the WAL machinery recovers it
// bit-identically, plus Clone for epoch snapshots and Footprint for
// budget accounting.
type Bundle struct {
	cfg BundleConfig
	mc  *graphsketch.MinCutSketch
	sp  *graphsketch.SimpleSparsifier
	// spLog is the coalesced live edge set as a replayable stream — the
	// Baswana–Sen construction is r-adaptive (multi-pass), so it cannot run
	// off a linear sketch alone. Appends accumulate and re-coalesce once
	// the log doubles, keeping it O(live edges), not O(stream length).
	spLog     []stream.Update
	coalesced int // prefix length known coalesced
}

// NewBundle creates an empty bundle with the given shape.
func NewBundle(cfg BundleConfig) *Bundle {
	return &Bundle{
		cfg: cfg,
		mc:  graphsketch.NewMinCutSketchK(cfg.N, cfg.K, cfg.Seed),
		sp:  graphsketch.NewSimpleSparsifier(cfg.N, cfg.Eps, cfg.Seed),
	}
}

// Config returns the bundle's shape.
func (b *Bundle) Config() BundleConfig { return b.cfg }

// UpdateBatch applies one batch to every member sketch and the spanner log.
func (b *Bundle) UpdateBatch(ups []stream.Update) {
	if len(ups) == 0 {
		return
	}
	b.mc.UpdateBatch(ups)
	b.sp.UpdateBatch(ups)
	b.spLog = append(b.spLog, ups...)
	if len(b.spLog) >= 64 && len(b.spLog) >= 2*b.coalesced {
		b.coalesceLog()
	}
}

// coalesceLog rewrites the spanner log as the sorted net edge set.
func (b *Bundle) coalesceLog() {
	if b.coalesced == len(b.spLog) {
		return
	}
	co := (&stream.Stream{N: b.cfg.N, Updates: b.spLog}).Coalesce()
	b.spLog = co.Updates
	b.coalesced = len(co.Updates)
}

// Clone deep-copies the bundle — the epoch-snapshot primitive. The clone
// shares nothing mutable with the original, so queries against it never
// block (or observe) ingest.
func (b *Bundle) Clone() *Bundle {
	return &Bundle{
		cfg:       b.cfg,
		mc:        b.mc.Clone(),
		sp:        b.sp.Clone(),
		spLog:     append([]stream.Update(nil), b.spLog...),
		coalesced: b.coalesced,
	}
}

// MinCut estimates the global min cut from the bundle's epoch state.
func (b *Bundle) MinCut() (graphsketch.MinCutResult, error) { return b.mc.MinCut() }

// Sparsify recovers the cut sparsifier's graph.
func (b *Bundle) Sparsify() (*graphsketch.Graph, error) { return b.sp.Sparsify() }

// Spanner builds a (2k-1)-spanner from the coalesced update log. The log's
// vertex range is validated here, not at decode time: a merged payload
// vouches for its own section, and this is the deliberate corrupt-payload
// fixture the service's panic-isolation middleware is tested against.
func (b *Bundle) Spanner() graphsketch.SpannerResult {
	// Range-check before coalescing: the edge-index round-trip inside
	// Coalesce is only a bijection on in-range vertices, so an out-of-range
	// entry must be caught while it is still recognizable.
	for _, u := range b.spLog {
		if u.U < 0 || u.U >= b.cfg.N || u.V < 0 || u.V >= b.cfg.N {
			panic(fmt.Sprintf("service: corrupt spanner log: vertex (%d,%d) out of range [0,%d)", u.U, u.V, b.cfg.N))
		}
	}
	b.coalesceLog()
	st := &stream.Stream{N: b.cfg.N, Updates: b.spLog}
	return graphsketch.BaswanaSenSpanner(st, b.cfg.SpannerK, b.cfg.Seed)
}

// Footprint accumulates the member sketches' resident/wire sizes plus the
// spanner log (24 bytes per buffered update).
func (b *Bundle) Footprint() graphsketch.Footprint {
	fp := b.mc.Footprint()
	fp.Accum(b.sp.Footprint())
	fp.ResidentBytes += int64(len(b.spLog)) * 24
	return fp
}

// ResidentBytes is the budget-accounting scalar (admission control and
// evict-coldest run on it).
func (b *Bundle) ResidentBytes() int64 { return b.Footprint().ResidentBytes }

// MarshalBinaryCompact encodes the bundle: config header, then
// length-prefixed member payloads, then the coalesced spanner log. The
// encoding is canonical (members marshal canonically, the log is coalesced
// and sorted first), which is what makes bit-identity assertions
// meaningful end to end.
func (b *Bundle) MarshalBinaryCompact() ([]byte, error) {
	b.coalesceLog()
	mcB, err := b.mc.MarshalBinaryCompact()
	if err != nil {
		return nil, err
	}
	spB, err := b.sp.MarshalBinaryCompact()
	if err != nil {
		return nil, err
	}
	out := wire.AppendUvarint(nil, uint64(b.cfg.N))
	out = wire.AppendUvarint(out, uint64(b.cfg.K))
	out = wire.AppendUvarint(out, math.Float64bits(b.cfg.Eps))
	out = wire.AppendUvarint(out, uint64(b.cfg.SpannerK))
	out = wire.AppendUvarint(out, b.cfg.Seed)
	out = wire.AppendUvarint(out, uint64(len(mcB)))
	out = append(out, mcB...)
	out = wire.AppendUvarint(out, uint64(len(spB)))
	out = append(out, spB...)
	out = wire.AppendUvarint(out, uint64(len(b.spLog)))
	for _, u := range b.spLog {
		out = wire.AppendUvarint(out, uint64(u.U))
		out = wire.AppendUvarint(out, uint64(u.V))
		out = wire.AppendUvarint(out, wire.Zigzag(u.Delta))
	}
	return out, nil
}

// MergeBytes folds an encoded bundle into this one (linear: sketch states
// add, spanner logs concatenate and re-coalesce). The config header must
// match exactly; byte-level corruption in the member payloads errors (the
// members' decoders are hardened). The spanner-log section's vertex range
// is deliberately trusted here and checked at Spanner() time — see there.
func (b *Bundle) MergeBytes(data []byte) error {
	hdr := []uint64{uint64(b.cfg.N), uint64(b.cfg.K), math.Float64bits(b.cfg.Eps), uint64(b.cfg.SpannerK), b.cfg.Seed}
	for _, want := range hdr {
		got, rest, err := wire.Uvarint(data)
		if err != nil {
			return fmt.Errorf("service: bundle header: %w", err)
		}
		if got != want {
			return fmt.Errorf("service: bundle config mismatch (%d != %d): %w", got, want, graphsketch.ErrBadEncoding)
		}
		data = rest
	}
	mcB, data, err := lengthPrefixed(data)
	if err != nil {
		return fmt.Errorf("service: bundle mincut section: %w", err)
	}
	spB, data, err := lengthPrefixed(data)
	if err != nil {
		return fmt.Errorf("service: bundle sparsifier section: %w", err)
	}
	count, data, err := wire.Uvarint(data)
	if err != nil || count > uint64(len(data)) {
		return fmt.Errorf("service: bundle spanner log: %w", graphsketch.ErrBadEncoding)
	}
	ups := make([]stream.Update, 0, count)
	for i := uint64(0); i < count; i++ {
		var u, v, zd uint64
		if u, data, err = wire.Uvarint(data); err != nil {
			return fmt.Errorf("service: bundle spanner log: %w", err)
		}
		if v, data, err = wire.Uvarint(data); err != nil {
			return fmt.Errorf("service: bundle spanner log: %w", err)
		}
		if zd, data, err = wire.Uvarint(data); err != nil {
			return fmt.Errorf("service: bundle spanner log: %w", err)
		}
		ups = append(ups, stream.Update{U: int(u), V: int(v), Delta: wire.Unzigzag(zd)})
	}
	if len(data) != 0 {
		return fmt.Errorf("service: bundle trailing bytes: %w", graphsketch.ErrBadEncoding)
	}
	// Merge into clones and swap, so a corrupt member payload cannot leave
	// the bundle half-merged.
	mc2, sp2 := b.mc.Clone(), b.sp.Clone()
	if err := mc2.MergeBytes(mcB); err != nil {
		return err
	}
	if err := sp2.MergeBytes(spB); err != nil {
		return err
	}
	b.mc, b.sp = mc2, sp2
	b.spLog = append(b.spLog, ups...)
	b.coalesced = 0
	return nil
}

// lengthPrefixed splits one uvarint-length-prefixed section off data.
func lengthPrefixed(data []byte) (section, rest []byte, err error) {
	n, rest, err := wire.Uvarint(data)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(rest)) {
		return nil, nil, graphsketch.ErrBadEncoding
	}
	return rest[:n], rest[n:], nil
}
