package service

import (
	"context"
	"errors"
	"sync"
	"time"

	"graphsketch/internal/hashing"
)

// SyncConfig parameterizes a replica's anti-entropy syncer.
type SyncConfig struct {
	// Peers are the other replicas' base URLs (never this node's own).
	Peers []string
	// Every is the anti-entropy interval (default 500ms).
	Every time.Duration
	// Timeout bounds each probe/pull request (default 2s). Pulls retry on
	// the next round rather than inside one, so a partitioned peer costs
	// one timeout per round, not a retry storm.
	Timeout time.Duration
	// JitterSeed seeds the pull clients' backoff jitter and the per-peer
	// round backoff (tests pin it).
	JitterSeed uint64
	// NoDelta disables bank-granular delta pulls; every convergence is a
	// full payload pull (the pre-digest-tree behavior, kept as an escape
	// hatch and a baseline for the sim's byte accounting).
	NoDelta bool
}

func (c SyncConfig) withDefaults() SyncConfig {
	if c.Every <= 0 {
		c.Every = 500 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	return c
}

// maxBackoffShift caps the per-peer round backoff at 2^6 = 64 rounds.
const maxBackoffShift = 6

// peerState is one peer's client plus its round-granular backoff ledger: a
// peer that failed its last round is skipped for exponentially many rounds
// (with seeded jitter) instead of eating a timeout every round. Guarded by
// the syncer mutex; /metricz snapshots it via PeerSyncStatus.
type peerState struct {
	client *Client
	base   string

	failures  int   // consecutive failed rounds
	nextRound int64 // first round eligible again
	skipped   int64 // rounds suppressed by backoff (monotone)
}

// PeerSyncStatus is one peer's backoff snapshot, surfaced in /metricz.
type PeerSyncStatus struct {
	Peer              string `json:"peer"`
	Failures          int    `json:"failures"`
	NextEligibleRound int64  `json:"next_eligible_round"`
	SkippedRounds     int64  `json:"skipped_rounds"`
}

// Syncer is the anti-entropy loop that makes a serve instance a replica:
// every round it probes each eligible peer for the tenants it serves,
// their durable positions, and their digest-manifest roots, and wherever a
// peer is ahead it converges — by pulling only the diverged banks when the
// manifests mostly agree (delta anti-entropy), or the full epoch-stamped
// payload otherwise — and installing through Server.SyncApplyDelta /
// SyncApply. Tenants quarantined by the integrity scrubber are repaired
// from the first healthy peer through Server.RepairApply.
//
// The protocol needs nothing beyond pull + position dedup because the
// payloads are linear-sketch states: a payload at position P is the
// complete, canonical state of the stream prefix [0,P), so installing the
// highest-position payload converges a follower in one round no matter
// how many pulls it missed — there is no log shipping to catch up on and
// no ordering to reconstruct. The digest tree strengthens that: every
// install re-verifies the bytes against the root the peer advertised, and
// a delta install additionally proves the assembled state reproduces that
// root before anything is swapped in.
type Syncer struct {
	srv *Server
	cfg SyncConfig

	mu    sync.Mutex
	round int64
	peers []*peerState

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// SyncRound reports one anti-entropy round's work, for tests and rows.
type SyncRound struct {
	Probed   int   // tenant/peer position probes answered
	Pulled   int   // payloads fetched because a peer was ahead
	Applied  int   // installs that advanced local state
	Skipped  int   // installs deduped by position
	Failed   int   // probes or pulls that errored (partitioned peer, etc.)
	Repaired int   // quarantined tenants restored from a peer this round
	Deltas   int   // convergences satisfied by bank-granular delta pulls
	Bytes    int64 // sealed payload bytes transferred
}

// NewSyncer builds a syncer for srv against cfg.Peers and registers its
// backoff snapshot with the server's /metricz.
func NewSyncer(srv *Server, cfg SyncConfig) *Syncer {
	cfg = cfg.withDefaults()
	y := &Syncer{srv: srv, cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	for _, p := range cfg.Peers {
		y.peers = append(y.peers, &peerState{
			base: p,
			client: &Client{
				Base:       p,
				Timeout:    cfg.Timeout,
				Attempts:   1, // retries are the next round's job
				JitterSeed: cfg.JitterSeed,
			},
		})
	}
	srv.SetSyncStatus(y.PeerStatus)
	return y
}

// PeerStatus snapshots every peer's backoff state for /metricz.
func (y *Syncer) PeerStatus() []PeerSyncStatus {
	y.mu.Lock()
	defer y.mu.Unlock()
	out := make([]PeerSyncStatus, 0, len(y.peers))
	for _, ps := range y.peers {
		out = append(out, PeerSyncStatus{
			Peer:              ps.base,
			Failures:          ps.failures,
			NextEligibleRound: ps.nextRound,
			SkippedRounds:     ps.skipped,
		})
	}
	return out
}

// Run loops anti-entropy rounds every cfg.Every until Stop (or the server
// is killed). Call in a goroutine; Stop blocks until the loop exits.
func (y *Syncer) Run() {
	defer close(y.done)
	ticker := time.NewTicker(y.cfg.Every)
	defer ticker.Stop()
	for {
		select {
		case <-y.stop:
			return
		case <-y.srv.killed:
			return
		case <-ticker.C:
			y.RunOnce(context.Background())
		}
	}
}

// Stop halts the loop and waits for the in-flight round to finish.
func (y *Syncer) Stop() {
	y.stopOnce.Do(func() { close(y.stop) })
	<-y.done
}

// RunOnce performs one anti-entropy round: probe every backoff-eligible
// peer, converge where behind, repair what is quarantined. Exported so
// tests and harnesses drive convergence deterministically without timers.
func (y *Syncer) RunOnce(ctx context.Context) SyncRound {
	var round SyncRound
	y.srv.met.SyncRounds.Add(1)
	y.mu.Lock()
	y.round++
	r := y.round
	y.mu.Unlock()
	for i, ps := range y.peers {
		y.mu.Lock()
		eligible := r >= ps.nextRound
		if !eligible {
			ps.skipped++
		}
		y.mu.Unlock()
		if !eligible {
			continue
		}
		peerFailed := false
		names, ok := y.peerTenants(ps.client)
		if !ok {
			peerFailed = true
		}
		for _, name := range names {
			if !y.syncTenant(ctx, ps.client, name, &round) {
				peerFailed = true
			}
		}
		y.noteOutcome(ps, i, r, peerFailed)
	}
	return round
}

// noteOutcome updates one peer's backoff ledger after its round: a failure
// doubles the skip window (capped at 2^maxBackoffShift rounds) with a
// seeded jitter of up to half the window, a success clears it.
func (y *Syncer) noteOutcome(ps *peerState, peerIdx int, round int64, failed bool) {
	y.mu.Lock()
	defer y.mu.Unlock()
	if !failed {
		ps.failures = 0
		ps.nextRound = 0
		return
	}
	ps.failures++
	shift := ps.failures
	if shift > maxBackoffShift {
		shift = maxBackoffShift
	}
	delay := int64(1) << shift
	seed := y.cfg.JitterSeed
	if seed == 0 {
		seed = 1
	}
	// Deterministic per (seed, peer, failure count): replicas with different
	// seeds desynchronize their retry storms, tests with pinned seeds pin
	// the exact schedule.
	jitter := int64(hashing.Mix64(seed^uint64(peerIdx)*0x9E3779B97F4A7C15+uint64(ps.failures)) % uint64(delay/2+1))
	ps.nextRound = round + delay + jitter
}

// peerTenants returns the union of the peer's loaded tenants and our own
// (ok=false when the peer's tenant listing was unreachable): a tenant the
// peer has never heard of is probed anyway (the probe loads it from the
// peer's disk if it exists there), and a tenant only the peer knows must
// be adopted locally.
func (y *Syncer) peerTenants(peer *Client) ([]string, bool) {
	seen := map[string]bool{}
	var names []string
	met, err := peer.Metrics()
	if err == nil {
		for _, n := range met.Tenants {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	for _, n := range y.srv.TenantNames() {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	return names, err == nil
}

// syncTenant probes one (peer, tenant) pair and converges on it if the
// peer is ahead, repairing it instead if it is locally quarantined.
// Returns false when the peer itself misbehaved (transport failures feed
// the backoff ledger; local apply errors do not).
func (y *Syncer) syncTenant(ctx context.Context, peer *Client, name string, round *SyncRound) bool {
	pi, err := peer.PositionEx(name)
	if err != nil {
		round.Failed++
		y.srv.met.SyncFailed.Add(1)
		return false
	}
	round.Probed++

	localPos := -1
	var t *tenant
	if lt, lerr := y.srv.Tenant(name, false); lerr == nil {
		t = lt
		localPos = t.Acked()
	}
	if t != nil && t.Quarantined() {
		if pi.Quarantined {
			return true // both sides fenced: no healthy state to repair from
		}
		return y.repairTenant(ctx, peer, name, pi, round)
	}
	if pi.Quarantined {
		return true // peer is fenced; it serves no payloads until repaired
	}
	// Refresh the lag mirrors on every probe, not just on pulls, so a
	// follower that is merely behind (not pulling yet) still reports it.
	if t != nil {
		t.replPeerPos.Store(int64(pi.Acked))
		behindEpochs := int64(pi.Epoch) - int64(t.syncEpoch.Load())
		if behindEpochs < 0 || pi.Acked <= localPos {
			behindEpochs = 0
		}
		t.replEpochsBehind.Store(behindEpochs)
	}
	if pi.Acked <= localPos {
		return true // we are the one ahead (or equal): nothing to converge
	}

	// Delta attempt: when both sides have digest manifests of the same
	// width, pull only the diverged banks. Any insufficiency (races with
	// local ingest, manifest staleness) falls back to the full pull below.
	if !y.cfg.NoDelta && t != nil && pi.HasManifest {
		if localMan, _, merr := y.srv.ManifestNow(ctx, name, false); merr == nil &&
			len(localMan.Banks) == len(pi.Manifest.Banks) {
			diverged := localMan.Diff(pi.Manifest)
			if len(diverged) < len(localMan.Banks) {
				sealed, pos, epoch, root, perr := peer.PayloadBanksAt(name, diverged)
				if perr != nil {
					round.Failed++
					y.srv.met.SyncFailed.Add(1)
					return false
				}
				round.Pulled++
				round.Bytes += int64(len(sealed))
				if _, aerr := y.srv.SyncApplyDelta(ctx, name, pos, epoch, root, sealed); aerr == nil {
					round.Applied++
					round.Deltas++
					return true
				} else if !errors.Is(aerr, ErrDeltaInsufficient) && !errors.Is(aerr, ErrDigestMismatch) {
					round.Failed++
					return true // local apply problem, not the peer's fault
				}
				// Insufficient or contradicted delta: full pull decides.
			}
		}
	}

	sealed, pos, epoch, root, err := peer.PayloadBanksAt(name, nil)
	if err != nil {
		round.Failed++
		y.srv.met.SyncFailed.Add(1)
		return false
	}
	round.Pulled++
	round.Bytes += int64(len(sealed))
	if t != nil {
		t.replBytesPending.Store(int64(len(sealed)))
	}
	before := y.srv.met.SyncApplied.Load()
	if _, err := y.srv.SyncApply(ctx, name, pos, epoch, root, sealed); err != nil {
		round.Failed++
		return true
	}
	if y.srv.met.SyncApplied.Load() > before {
		round.Applied++
	} else {
		round.Skipped++
	}
	return true
}

// repairTenant restores a locally-quarantined tenant from a healthy peer:
// recompute the local manifest from the rotted bytes, diff it against the
// peer's, pull just the diverged banks, and install through RepairApply —
// which re-verifies everything against the peer's root before lifting the
// fence. Any delta failure retries with the full payload; byte-identity
// with the peer is the postcondition either way.
func (y *Syncer) repairTenant(ctx context.Context, peer *Client, name string, pi PositionInfo, round *SyncRound) bool {
	var banks []int
	useDelta := false
	if !y.cfg.NoDelta && pi.HasManifest {
		if localMan, _, merr := y.srv.ManifestNow(ctx, name, true); merr == nil &&
			len(localMan.Banks) == len(pi.Manifest.Banks) {
			banks = localMan.Diff(pi.Manifest)
			useDelta = len(banks) < len(localMan.Banks)
		}
	}
	if useDelta {
		sealed, pos, epoch, root, err := peer.PayloadBanksAt(name, banks)
		if err != nil {
			round.Failed++
			y.srv.met.SyncFailed.Add(1)
			return false
		}
		round.Pulled++
		round.Bytes += int64(len(sealed))
		if _, aerr := y.srv.RepairApply(ctx, name, pos, epoch, root, sealed); aerr == nil {
			round.Applied++
			round.Repaired++
			round.Deltas++
			return true
		}
		// Delta could not prove byte-identity; fall through to the full pull.
	}
	sealed, pos, epoch, root, err := peer.PayloadBanksAt(name, nil)
	if err != nil {
		round.Failed++
		y.srv.met.SyncFailed.Add(1)
		return false
	}
	round.Pulled++
	round.Bytes += int64(len(sealed))
	if _, aerr := y.srv.RepairApply(ctx, name, pos, epoch, root, sealed); aerr != nil {
		round.Failed++
		y.srv.met.SyncFailed.Add(1)
		return true
	}
	round.Applied++
	round.Repaired++
	return true
}
