package service

import (
	"context"
	"sync"
	"time"
)

// SyncConfig parameterizes a replica's anti-entropy syncer.
type SyncConfig struct {
	// Peers are the other replicas' base URLs (never this node's own).
	Peers []string
	// Every is the anti-entropy interval (default 500ms).
	Every time.Duration
	// Timeout bounds each probe/pull request (default 2s). Pulls retry on
	// the next round rather than inside one, so a partitioned peer costs
	// one timeout per round, not a retry storm.
	Timeout time.Duration
	// JitterSeed seeds the pull clients' backoff jitter (tests pin it).
	JitterSeed uint64
}

func (c SyncConfig) withDefaults() SyncConfig {
	if c.Every <= 0 {
		c.Every = 500 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	return c
}

// Syncer is the anti-entropy loop that makes a serve instance a replica:
// every round it probes each peer for the tenants it serves and their
// durable positions, and wherever a peer is ahead it pulls the peer's
// epoch-stamped compact payload and installs it locally through
// Server.SyncApply.
//
// The protocol needs nothing beyond pull + position dedup because the
// payloads are linear-sketch states: a payload at position P is the
// complete, canonical state of the stream prefix [0,P), so installing the
// highest-position payload converges a follower in one round no matter
// how many pulls it missed — there is no log shipping to catch up on and
// no ordering to reconstruct. Duplicated, reordered, and raced pulls are
// all deduped by the install's position check, which is what makes the
// loop safe to run blindly from every node at once: whoever is behind
// converges toward whoever is ahead, and the position-addressed ingest
// protocol keeps the (single) writing client exactly-once across the
// resulting role changes.
type Syncer struct {
	srv *Server
	cfg SyncConfig
	// pullers are per-peer clients. Deliberately single-endpoint: a pull
	// must answer about THIS peer or fail — failing over to another peer
	// would report a different replica's position under the wrong label.
	pullers []*Client

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// SyncRound reports one anti-entropy round's work, for tests and rows.
type SyncRound struct {
	Probed  int   // tenant/peer position probes answered
	Pulled  int   // payloads fetched because a peer was ahead
	Applied int   // installs that advanced local state
	Skipped int   // installs deduped by position
	Failed  int   // probes or pulls that errored (partitioned peer, etc.)
	Bytes   int64 // sealed payload bytes transferred
}

// NewSyncer builds a syncer for srv against cfg.Peers.
func NewSyncer(srv *Server, cfg SyncConfig) *Syncer {
	cfg = cfg.withDefaults()
	y := &Syncer{srv: srv, cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	for _, p := range cfg.Peers {
		y.pullers = append(y.pullers, &Client{
			Base:       p,
			Timeout:    cfg.Timeout,
			Attempts:   1, // retries are the next round's job
			JitterSeed: cfg.JitterSeed,
		})
	}
	return y
}

// Run loops anti-entropy rounds every cfg.Every until Stop (or the server
// is killed). Call in a goroutine; Stop blocks until the loop exits.
func (y *Syncer) Run() {
	defer close(y.done)
	ticker := time.NewTicker(y.cfg.Every)
	defer ticker.Stop()
	for {
		select {
		case <-y.stop:
			return
		case <-y.srv.killed:
			return
		case <-ticker.C:
			y.RunOnce(context.Background())
		}
	}
}

// Stop halts the loop and waits for the in-flight round to finish.
func (y *Syncer) Stop() {
	y.stopOnce.Do(func() { close(y.stop) })
	<-y.done
}

// RunOnce performs one anti-entropy round: probe every peer, pull where
// behind, install locally. Exported so tests and harnesses can drive
// convergence deterministically without timers.
func (y *Syncer) RunOnce(ctx context.Context) SyncRound {
	var round SyncRound
	y.srv.met.SyncRounds.Add(1)
	for _, peer := range y.pullers {
		for _, name := range y.peerTenants(peer) {
			y.syncTenant(ctx, peer, name, &round)
		}
	}
	return round
}

// peerTenants returns the union of the peer's loaded tenants and our own:
// a tenant the peer has never heard of is probed anyway (the probe loads
// it from the peer's disk if it exists there), and a tenant only the peer
// knows must be adopted locally.
func (y *Syncer) peerTenants(peer *Client) []string {
	seen := map[string]bool{}
	var names []string
	if met, err := peer.Metrics(); err == nil {
		for _, n := range met.Tenants {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	for _, n := range y.srv.TenantNames() {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	return names
}

// syncTenant probes one (peer, tenant) pair and converges on it if the
// peer is ahead.
func (y *Syncer) syncTenant(ctx context.Context, peer *Client, name string, round *SyncRound) {
	peerPos, peerEpoch, err := y.probe(peer, name)
	if err != nil {
		round.Failed++
		y.srv.met.SyncFailed.Add(1)
		return
	}
	round.Probed++

	localPos := -1
	var t *tenant
	if lt, lerr := y.srv.Tenant(name, false); lerr == nil {
		t = lt
		localPos = t.Acked()
	}
	// Refresh the lag mirrors on every probe, not just on pulls, so a
	// follower that is merely behind (not pulling yet) still reports it.
	if t != nil {
		t.replPeerPos.Store(int64(peerPos))
		behindEpochs := int64(peerEpoch) - int64(t.syncEpoch.Load())
		if behindEpochs < 0 || peerPos <= localPos {
			behindEpochs = 0
		}
		t.replEpochsBehind.Store(behindEpochs)
	}
	if peerPos <= localPos {
		return // we are the one ahead (or equal): nothing to converge
	}

	sealed, pos, epoch, err := peer.PayloadAt(name)
	if err != nil {
		round.Failed++
		y.srv.met.SyncFailed.Add(1)
		return
	}
	round.Pulled++
	round.Bytes += int64(len(sealed))
	if t != nil {
		t.replBytesPending.Store(int64(len(sealed)))
	}
	before := y.srv.met.SyncApplied.Load()
	if _, err := y.srv.SyncApply(ctx, name, pos, epoch, sealed); err != nil {
		round.Failed++
		return
	}
	if y.srv.met.SyncApplied.Load() > before {
		round.Applied++
	} else {
		round.Skipped++
	}
}

// probe asks the peer for a tenant's durable position and epoch.
func (y *Syncer) probe(peer *Client, name string) (pos int, epoch uint64, err error) {
	var resp IngestResponse
	if err := peer.do("GET", "/v1/tenants/"+name+"/position", nil, &resp); err != nil {
		return 0, 0, err
	}
	return resp.Acked, resp.Epoch, nil
}
