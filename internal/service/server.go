package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"graphsketch"
	"graphsketch/internal/runtime"
	"graphsketch/internal/stream"
	"graphsketch/internal/wire"
)

// Config parameterizes a Server.
type Config struct {
	// Dir is the data root; each tenant's WAL lives under Dir/<tenant>/.
	Dir string
	// Bundle is the sketch shape given to every tenant.
	Bundle BundleConfig
	// Queue is the per-tenant ingest queue capacity in batches (default
	// 64). A full queue is backpressure: senders block up to their
	// deadline, they do not buffer unboundedly.
	Queue int
	// Fsync and FsyncEvery configure WAL durability (runtime.DiskConfig).
	Fsync      runtime.FsyncPolicy
	FsyncEvery int
	// SnapshotEvery triggers a WAL snapshot after that many ingested
	// updates (default 4096); it bounds recovery replay.
	SnapshotEvery int
	// EpochEvery publishes a fresh read-only epoch clone after that many
	// ingested updates (default 256); it bounds query staleness.
	EpochEvery int
	// TenantBudget caps one tenant's resident bytes (0 = unlimited);
	// ingest beyond it is rejected.
	TenantBudget int64
	// GlobalBudget caps the sum of resident bytes across loaded tenants
	// (0 = unlimited); crossing it evicts the coldest tenant to disk, and
	// rejects if eviction cannot free enough.
	GlobalBudget int64
	// QueryTimeout is the per-request deadline the HTTP middleware applies
	// (default 10s).
	QueryTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Queue <= 0 {
		c.Queue = 64
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 4096
	}
	if c.EpochEvery <= 0 {
		c.EpochEvery = 256
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 10 * time.Second
	}
	if c.Bundle.N <= 0 {
		c.Bundle = DefaultBundleConfig(64, 1)
	}
	return c
}

// Sentinel errors; the HTTP layer maps them to status codes.
var (
	ErrDraining         = errors.New("service: draining, intake stopped")
	ErrKilled           = errors.New("service: server killed")
	ErrUnknownTenant    = errors.New("service: unknown tenant")
	ErrBadTenantName    = errors.New("service: bad tenant name")
	ErrTenantBudget     = errors.New("service: tenant memory budget exceeded")
	ErrGlobalBudget     = errors.New("service: global memory budget exceeded")
	ErrPositionConflict = errors.New("service: position conflict")
	// ErrQuarantined fences a tenant whose integrity scrub failed: reads and
	// writes 503 until a peer repair restores verified state. /position
	// still answers (repair needs the position, and a quarantined node must
	// say where it stopped), but nothing computed FROM the suspect state is
	// ever served.
	ErrQuarantined = errors.New("service: tenant quarantined by integrity scrub")
)

// Metrics are the server's monotone counters, all atomics so the HTTP
// layer reads them without locks.
type Metrics struct {
	IngestBatches  atomic.Int64
	IngestUpdates  atomic.Int64
	IngestRejected atomic.Int64
	Queries        atomic.Int64
	QueryPanics    atomic.Int64
	QueryTimeouts  atomic.Int64
	Evictions      atomic.Int64
	Recoveries     atomic.Int64
	// Replication counters: anti-entropy rounds run by this node's syncer,
	// payload installs applied / deduped / failed on this node.
	SyncRounds  atomic.Int64
	SyncApplied atomic.Int64
	SyncSkipped atomic.Int64
	SyncFailed  atomic.Int64
	// Integrity counters: scrub passes over tenants, scrub verdicts that
	// quarantined a tenant, local scrub repairs (disk rewrite / mirror
	// recovery / epoch republish), WAL directories sidelined as corrupt at
	// open, and peer repairs that lifted a quarantine.
	ScrubRounds       atomic.Int64
	ScrubFailed       atomic.Int64
	ScrubRepaired     atomic.Int64
	CorruptSidelined  atomic.Int64
	QuarantineRepairs atomic.Int64
	// Delta anti-entropy counters: installs rejected because the payload
	// manifest contradicted the peer-advertised root, bank-granular delta
	// pulls applied, the wire bytes those deltas cost, and the bytes the
	// equivalent full pulls would have cost (the savings denominator).
	SyncDigestReject   atomic.Int64
	SyncDeltaPulls     atomic.Int64
	SyncDeltaBytes     atomic.Int64
	SyncDeltaFullBytes atomic.Int64
}

// Epoch is one published point-in-time snapshot: a bundle clone frozen at
// an exact stream position. Queries serve from the freshest epoch and
// report its staleness rather than blocking on (or racing with) the
// writer. The bundle's logical state is immutable here, but query
// execution mutates decode scratch inside the sketches, so concurrent
// queries on one epoch are serialized by the epoch's mutex — never
// against the writer, which owns a different bundle.
type Epoch struct {
	Bundle *Bundle
	Pos    int
	Seq    uint64
	// Manifest is the bundle's digest tree at publication — the epoch's
	// integrity commitment. /position advertises its root, the scrubber
	// re-verifies state against it, and delta sync diffs against it.
	Manifest wire.Manifest

	mu sync.Mutex
	// spanRes memoizes the epoch's spanner build: the epoch is frozen, so
	// the first spanner or spanner-edge query pays for the construction and
	// every later one answers from the cached certificate.
	spanRes *graphsketch.SpannerResult
}

// MinCut runs the mincut query against the frozen epoch state.
func (e *Epoch) MinCut() (graphsketch.MinCutResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.Bundle.MinCut()
}

// Sparsify recovers the epoch's cut sparsifier.
func (e *Epoch) Sparsify() (*graphsketch.Graph, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.Bundle.Sparsify()
}

// Spanner builds the epoch's spanner, memoized per epoch (panics on the
// corrupt-log fixture; the HTTP middleware turns that into one failed
// response, and a panicking build is never cached).
func (e *Epoch) Spanner() graphsketch.SpannerResult {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.spanRes == nil {
		res := e.Bundle.Spanner()
		e.spanRes = &res
	}
	return *e.spanRes
}

// SpannerEdge reports whether edge (u,v) is in the epoch's sparse spanner
// certificate — the membership query a high-traffic caller asks without
// wanting the whole subgraph back.
func (e *Epoch) SpannerEdge(u, v int) (bool, graphsketch.SpannerResult) {
	res := e.Spanner()
	return res.Spanner.HasEdge(u, v), res
}

// Footprint reports the epoch bundle's memory accounting.
func (e *Epoch) Footprint() graphsketch.Footprint {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.Bundle.Footprint()
}

// tenant is one keyed sketch registry entry. All mutable sketch state is
// owned by the single writer goroutine; everything crossing the boundary
// is either a queue op or an atomic.
type tenant struct {
	name string
	srv  *Server

	queue chan op
	stop  chan struct{} // drain/evict: writer flushes and exits
	done  chan struct{} // closed when the writer has exited

	snap     atomic.Pointer[Epoch]
	acked    atomic.Int64 // durable stream position
	resident atomic.Int64 // budget-accounting bytes, updated per batch
	touched  atomic.Int64 // logical clock of last use (evict-coldest key)
	closing  atomic.Bool

	// Replication observability, maintained by the syncer's probe/pull
	// rounds: the freshest peer position seen, how many epochs and bytes
	// this replica is behind it, and the primary epoch of the last applied
	// install. Mirrors only — correctness never reads them.
	replPeerPos      atomic.Int64
	replEpochsBehind atomic.Int64
	replBytesPending atomic.Int64
	syncEpoch        atomic.Uint64

	// Quarantine fence, set by the integrity scrubber (or a corrupt-at-open
	// sideline) and cleared only by a verified repair. While set, reads and
	// mutations 503 and the writer neither snapshots nor publishes — the
	// suspect state must not spread to disk, epochs, or peers.
	quarantined atomic.Bool
	quarReason  atomic.Value // string

	stopOnce sync.Once
}

// Quarantined reports whether the tenant is fenced by an integrity failure.
func (t *tenant) Quarantined() bool { return t.quarantined.Load() }

// QuarantineReason returns the fencing cause ("" when healthy).
func (t *tenant) QuarantineReason() string {
	if r, ok := t.quarReason.Load().(string); ok {
		return r
	}
	return ""
}

func (t *tenant) setQuarantine(reason string) {
	t.quarReason.Store(reason)
	t.quarantined.Store(true)
}

func (t *tenant) clearQuarantine() {
	t.quarantined.Store(false)
	t.quarReason.Store("")
}

type op struct {
	ups      []stream.Update
	expectAt int // required current position, -1 to skip the check
	// fn runs serialized with ingest in the writer goroutine (merge,
	// payload capture, forced flush). Exactly one of ups/fn is set.
	fn    func(w *runtime.DiskWAL, live *Bundle) error
	reply chan opResult
}

type opResult struct {
	pos int
	err error
}

// Server is the multi-tenant sketch service.
type Server struct {
	cfg Config
	met Metrics

	mu      sync.Mutex
	tenants map[string]*tenant

	draining atomic.Bool
	ready    atomic.Bool
	killed   chan struct{}
	killOnce sync.Once
	clock    atomic.Int64

	// syncStatus holds the syncer's per-peer backoff snapshot provider
	// (func() []PeerSyncStatus) for /metricz.
	syncStatus atomic.Value
}

// NewServer creates a server rooted at cfg.Dir (created if missing).
// Existing tenant directories are opened lazily on first touch.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("service: config needs a data dir")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	return &Server{cfg: cfg, tenants: make(map[string]*tenant), killed: make(chan struct{})}, nil
}

// Config returns the effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// Metrics exposes the counter block.
func (s *Server) Metrics() *Metrics { return &s.met }

var tenantNameRe = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$`)

// tenantDir maps a validated tenant name to its WAL directory.
func (s *Server) tenantDir(name string) string { return filepath.Join(s.cfg.Dir, name) }

// Tenant returns the named tenant, loading it from disk (recovery) or
// creating it fresh when create is set. A tenant evicted to disk is
// transparently reloaded — eviction is a memory decision, not data loss.
func (s *Server) Tenant(name string, create bool) (*tenant, error) {
	if !tenantNameRe.MatchString(name) || strings.HasSuffix(name, corruptSuffix) {
		return nil, fmt.Errorf("%w: %q", ErrBadTenantName, name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		t, ok := s.tenants[name]
		if !ok {
			break
		}
		if !t.closing.Load() {
			t.touched.Store(s.clock.Add(1))
			return t, nil
		}
		// Mid-eviction: the writer still owns the WAL directory. Wait for
		// it to finish closing before reopening, or two writers would race
		// on the same files.
		s.mu.Unlock()
		<-t.done
		s.mu.Lock()
		if s.tenants[name] == t {
			delete(s.tenants, name)
		}
	}
	if s.draining.Load() {
		return nil, ErrDraining
	}
	onDisk := false
	if _, err := os.Stat(runtime.LogPath(s.tenantDir(name))); err == nil {
		onDisk = true
	}
	if !onDisk && !create {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	diskCfg := runtime.DiskConfig{Policy: s.cfg.Fsync, Every: s.cfg.FsyncEvery}
	sidelined := ""
	wal, err := runtime.OpenDiskWAL(s.tenantDir(name), s.cfg.Bundle.N, diskCfg)
	if err != nil {
		if !errors.Is(err, runtime.ErrWALCorrupt) {
			return nil, err
		}
		if wal, err = s.sidelineCorrupt(name, diskCfg, err); err != nil {
			return nil, err
		}
		sidelined = "wal corrupt at open"
	}
	sk, pos, err := wal.Recover(func() runtime.Sketch { return NewBundle(s.cfg.Bundle) })
	if err != nil {
		wal.Close()
		if !errors.Is(err, runtime.ErrWALCorrupt) {
			return nil, err
		}
		if wal, err = s.sidelineCorrupt(name, diskCfg, err); err != nil {
			return nil, err
		}
		sidelined = "wal corrupt at recovery"
		if sk, pos, err = wal.Recover(func() runtime.Sketch { return NewBundle(s.cfg.Bundle) }); err != nil {
			wal.Close()
			return nil, err
		}
	}
	if onDisk {
		s.met.Recoveries.Add(1)
	}
	live := sk.(*Bundle)
	t := &tenant{
		name:  name,
		srv:   s,
		queue: make(chan op, s.cfg.Queue),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	t.acked.Store(int64(pos))
	t.resident.Store(live.ResidentBytes())
	t.touched.Store(s.clock.Add(1))
	man, _ := live.Manifest()
	t.snap.Store(&Epoch{Bundle: live.Clone(), Pos: pos, Seq: 1, Manifest: man})
	if sidelined != "" {
		t.setQuarantine(sidelined)
	}
	s.tenants[name] = t
	go t.run(wal, live)
	return t, nil
}

// corruptSuffix marks a sidelined (corrupt) WAL directory. Tenant names
// may not end with it, so a sidelined directory can never collide with —
// or be preloaded as — a live tenant.
const corruptSuffix = ".corrupt"

// sidelineCorrupt preserves a WAL directory that failed integrity at open
// by renaming it to <dir>.corrupt (replacing any previous sideline), then
// opens a fresh empty WAL in its place. The tenant comes up quarantined at
// position 0: it serves nothing until the syncer repairs it from a peer,
// and the rotted evidence stays on disk for forensics.
func (s *Server) sidelineCorrupt(name string, diskCfg runtime.DiskConfig, cause error) (*runtime.DiskWAL, error) {
	dir := s.tenantDir(name)
	side := dir + corruptSuffix
	if err := os.RemoveAll(side); err != nil {
		return nil, fmt.Errorf("sideline %q: %w (corrupt wal: %v)", name, err, cause)
	}
	if err := os.Rename(dir, side); err != nil {
		return nil, fmt.Errorf("sideline %q: %w (corrupt wal: %v)", name, err, cause)
	}
	s.met.CorruptSidelined.Add(1)
	return runtime.OpenDiskWAL(dir, s.cfg.Bundle.N, diskCfg)
}

// Preload opens every tenant directory found under the data root, running
// recovery and publishing each tenant's first epoch, then marks the server
// ready. /readyz answers 503 until this completes: a replica that has not
// recovered its WALs yet would serve positions and payloads that go
// backward, and the failover client must never be routed to it.
func (s *Server) Preload() error {
	entries, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() || strings.HasSuffix(e.Name(), corruptSuffix) {
			continue
		}
		if _, statErr := os.Stat(runtime.LogPath(s.tenantDir(e.Name()))); statErr != nil {
			continue
		}
		if _, err := s.Tenant(e.Name(), false); err != nil {
			return fmt.Errorf("preload %q: %w", e.Name(), err)
		}
	}
	s.ready.Store(true)
	return nil
}

// Ready reports whether Preload has completed — the /readyz signal.
func (s *Server) Ready() bool { return s.ready.Load() && !s.draining.Load() }

// Snapshot returns the tenant's freshest published epoch.
func (t *tenant) Snapshot() *Epoch { return t.snap.Load() }

// Acked returns the tenant's durable stream position — the exact position
// a client re-feeds from after a restart.
func (t *tenant) Acked() int { return int(t.acked.Load()) }

// Name returns the tenant key.
func (t *tenant) Name() string { return t.name }

// run is the tenant's single-writer loop: the only goroutine that touches
// the WAL and the live bundle. It exits on stop (drain/evict: flush,
// snapshot, close) or on kill (abandon everything mid-flight — the
// SIGKILL model the chaos suite recovers from).
func (t *tenant) run(wal *runtime.DiskWAL, live *Bundle) {
	defer close(t.done)
	sinceSnap, sincePub := 0, 0
	for {
		select {
		case <-t.srv.killed:
			return
		case o := <-t.queue:
			t.apply(o, wal, live, &sinceSnap, &sincePub)
		case <-t.stop:
			for {
				select {
				case <-t.srv.killed:
					return
				case o := <-t.queue:
					t.apply(o, wal, live, &sinceSnap, &sincePub)
				default:
					if sinceSnap > 0 && !t.quarantined.Load() {
						wal.Snapshot(live)
					}
					wal.Close()
					return
				}
			}
		}
	}
}

// apply executes one op in the writer goroutine. Ingest is WAL-first: the
// append must be durable before the sketch moves or the ack is sent.
func (t *tenant) apply(o op, wal *runtime.DiskWAL, live *Bundle, sinceSnap, sincePub *int) {
	if o.fn != nil {
		err := o.fn(wal, live)
		t.finish(wal, live)
		o.reply <- opResult{pos: wal.DurableUpdates(), err: err}
		return
	}
	if o.expectAt >= 0 && o.expectAt != wal.DurableUpdates() {
		o.reply <- opResult{pos: wal.DurableUpdates(), err: ErrPositionConflict}
		return
	}
	if err := wal.Append(o.ups); err != nil {
		o.reply <- opResult{pos: wal.DurableUpdates(), err: err}
		return
	}
	live.UpdateBatch(o.ups)
	*sinceSnap += len(o.ups)
	*sincePub += len(o.ups)
	if *sinceSnap >= t.srv.cfg.SnapshotEvery {
		if err := wal.Snapshot(live); err == nil {
			*sinceSnap = 0
		}
	}
	if *sincePub >= t.srv.cfg.EpochEvery {
		t.publish(wal, live)
		*sincePub = 0
	}
	t.finish(wal, live)
	t.srv.met.IngestBatches.Add(1)
	t.srv.met.IngestUpdates.Add(int64(len(o.ups)))
	o.reply <- opResult{pos: wal.DurableUpdates()}
}

// finish refreshes the tenant's cross-goroutine mirrors after any op.
func (t *tenant) finish(wal *runtime.DiskWAL, live *Bundle) {
	t.acked.Store(int64(wal.DurableUpdates()))
	t.resident.Store(live.ResidentBytes())
}

// publish installs a fresh epoch clone for queries, stamped with the
// live state's digest manifest (incremental: only banks dirtied since the
// last publish re-digest). Suppressed while quarantined — a fenced state
// must not become a served epoch.
func (t *tenant) publish(wal *runtime.DiskWAL, live *Bundle) {
	if t.quarantined.Load() {
		return
	}
	prev := t.snap.Load()
	var seq uint64 = 1
	if prev != nil {
		seq = prev.Seq + 1
	}
	man, _ := live.Manifest()
	t.snap.Store(&Epoch{Bundle: live.Clone(), Pos: wal.DurableUpdates(), Seq: seq, Manifest: man})
}

// submit enqueues an op and waits for the writer's reply, honoring the
// context deadline both while backpressured on a full queue and while
// waiting for the ack.
func (t *tenant) submit(ctx context.Context, o op) (int, error) {
	select {
	case t.queue <- o:
	case <-t.stop:
		return 0, ErrDraining
	case <-t.srv.killed:
		return 0, ErrKilled
	case <-ctx.Done():
		return 0, ctx.Err()
	}
	select {
	case r := <-o.reply:
		return r.pos, r.err
	case <-t.srv.killed:
		// The batch may or may not be durable; the client must re-sync via
		// Acked after the restart — exactly the unacknowledged window the
		// chaos suite re-feeds.
		return 0, ErrKilled
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// Ingest appends one batch to a tenant's stream. expectAt >= 0 asserts the
// tenant's current durable position (the exact re-feed handshake); pass -1
// to skip the check. Returns the durable position after the batch — the
// acknowledgement.
func (s *Server) Ingest(ctx context.Context, tenantName string, expectAt int, ups []stream.Update) (int, error) {
	if s.draining.Load() {
		s.met.IngestRejected.Add(1)
		return 0, ErrDraining
	}
	t, err := s.Tenant(tenantName, true)
	if err != nil {
		s.met.IngestRejected.Add(1)
		return 0, err
	}
	if t.Quarantined() {
		s.met.IngestRejected.Add(1)
		return t.Acked(), fmt.Errorf("%w: %s", ErrQuarantined, t.QuarantineReason())
	}
	if err := s.admit(t); err != nil {
		s.met.IngestRejected.Add(1)
		return 0, err
	}
	return t.submit(ctx, op{ups: ups, expectAt: expectAt, reply: make(chan opResult, 1)})
}

// Merge folds a sealed bundle payload into a tenant (serialized with its
// ingest) and snapshots immediately so the merged state is durable — merge
// bytes never travel through the update log.
func (s *Server) Merge(ctx context.Context, tenantName string, sealed []byte) (int, error) {
	if s.draining.Load() {
		return 0, ErrDraining
	}
	payload, _, err := wire.Open(sealed)
	if err != nil {
		return 0, err
	}
	t, err := s.Tenant(tenantName, true)
	if err != nil {
		return 0, err
	}
	if t.Quarantined() {
		return t.Acked(), fmt.Errorf("%w: %s", ErrQuarantined, t.QuarantineReason())
	}
	if err := s.admit(t); err != nil {
		return 0, err
	}
	return t.submit(ctx, op{reply: make(chan opResult, 1), fn: func(w *runtime.DiskWAL, live *Bundle) error {
		if err := live.MergeBytes(payload); err != nil {
			return err
		}
		t.publish(w, live)
		return w.Snapshot(live)
	}})
}

// Payload captures the tenant's sealed compact bundle payload at its exact
// current position (serialized with ingest, so no torn reads), stamped
// with the tenant's current epoch sequence.
func (s *Server) Payload(ctx context.Context, tenantName string) ([]byte, int, uint64, error) {
	sealed, pos, epoch, _, err := s.PayloadBanks(ctx, tenantName, nil)
	return sealed, pos, epoch, err
}

// PayloadBanks captures a sealed banked payload carrying only the
// requested banks (nil = all) plus the full digest manifest, with the
// manifest root returned for the transport header. The delta anti-entropy
// read side: a peer that knows which banks diverged pulls just those. A
// quarantined tenant serves nothing — its bytes are the suspect ones.
func (s *Server) PayloadBanks(ctx context.Context, tenantName string, banks []int) ([]byte, int, uint64, uint64, error) {
	t, err := s.Tenant(tenantName, false)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	if t.Quarantined() {
		return nil, 0, 0, 0, fmt.Errorf("%w: %s", ErrQuarantined, t.QuarantineReason())
	}
	var sealed []byte
	var epoch, root uint64
	pos, err := t.submit(ctx, op{reply: make(chan opResult, 1), fn: func(w *runtime.DiskWAL, live *Bundle) error {
		b, err := live.MarshalBanks(banks)
		if err != nil {
			return err
		}
		man, err := live.Manifest()
		if err != nil {
			return err
		}
		root = man.Root()
		sealed = wire.Seal(b)
		if ep := t.snap.Load(); ep != nil {
			epoch = ep.Seq
		}
		return nil
	}})
	if err != nil {
		return nil, 0, 0, 0, err
	}
	return sealed, pos, epoch, root, nil
}

// ManifestNow returns the tenant's live digest manifest at its exact
// current durable position (serialized with ingest). The delta syncer
// diffs this against a peer's advertised manifest to pick the banks to
// pull. Served even while quarantined: the repair path needs to know what
// the local (possibly rotted) bytes look like — pass recompute=true there
// so every leaf is rebuilt from the actual bytes instead of trusting the
// (pre-rot) incremental cache.
func (s *Server) ManifestNow(ctx context.Context, tenantName string, recompute bool) (wire.Manifest, int, error) {
	t, err := s.Tenant(tenantName, false)
	if err != nil {
		return wire.Manifest{}, 0, err
	}
	var man wire.Manifest
	pos, err := t.submit(ctx, op{reply: make(chan opResult, 1), fn: func(w *runtime.DiskWAL, live *Bundle) error {
		if recompute {
			if err := live.RecomputeDigests(); err != nil {
				return err
			}
		}
		var err error
		man, err = live.Manifest()
		return err
	}})
	return man, pos, err
}

// InjectBankRot corrupts one bank of the tenant's live in-memory state
// without updating its digest cache — the chaos hook integrity tests and
// the sim's bit-rot matrix use. Serialized with ingest like any mutation.
func (s *Server) InjectBankRot(ctx context.Context, tenantName string, bank int, seed uint64) error {
	t, err := s.Tenant(tenantName, false)
	if err != nil {
		return err
	}
	_, err = t.submit(ctx, op{reply: make(chan opResult, 1), fn: func(w *runtime.DiskWAL, live *Bundle) error {
		return live.InjectBankRot(bank, seed)
	}})
	return err
}

// TenantQuarantined reports a tenant's fence state and reason without
// loading it if it is not resident (unknown tenants report healthy).
func (s *Server) TenantQuarantined(name string) (bool, string) {
	s.mu.Lock()
	t, ok := s.tenants[name]
	s.mu.Unlock()
	if !ok {
		return false, ""
	}
	return t.Quarantined(), t.QuarantineReason()
}

// QuarantinedTenants lists the currently fenced tenants.
func (s *Server) QuarantinedTenants() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var names []string
	for name, t := range s.tenants {
		if t.Quarantined() {
			names = append(names, name)
		}
	}
	return names
}

// SetSyncStatus registers the syncer's per-peer backoff snapshot provider,
// surfaced through /metricz. The server itself never calls the syncer —
// this is observability plumbing only.
func (s *Server) SetSyncStatus(fn func() []PeerSyncStatus) { s.syncStatus.Store(fn) }

func (s *Server) peerSyncStatus() []PeerSyncStatus {
	if fn, ok := s.syncStatus.Load().(func() []PeerSyncStatus); ok && fn != nil {
		return fn()
	}
	return nil
}

// SyncApply installs a sealed bundle payload pulled from a replica peer as
// the tenant's complete state at the peer's stream position pos. The
// anti-entropy receive path: deduped by position (an install at or below
// the local durable position is a no-op, which makes duplicated and
// reordered pulls idempotent), folded through MergeBytes into a
// factory-fresh bundle (never the live one — a corrupt payload poisons
// nothing), and made durable via the WAL's InstallSnapshot before the ack.
// Positions only ever move forward here, and every state installed is some
// replica's exact prefix state, so the position-addressed ingest protocol
// keeps working across installs: a client whose expected position no
// longer matches gets the authoritative one back via 409 and re-feeds.
func (s *Server) SyncApply(ctx context.Context, tenantName string, pos int, epoch uint64, root uint64, sealed []byte) (int, error) {
	if s.draining.Load() {
		return 0, ErrDraining
	}
	payload, _, err := wire.Open(sealed)
	if err != nil {
		s.met.SyncFailed.Add(1)
		return 0, err
	}
	t, err := s.Tenant(tenantName, true)
	if err != nil {
		return 0, err
	}
	if t.Quarantined() {
		// A fenced tenant only accepts installs through RepairApply — the
		// path that re-verifies everything and lifts the fence.
		return t.Acked(), fmt.Errorf("%w: %s", ErrQuarantined, t.QuarantineReason())
	}
	if err := s.admit(t); err != nil {
		return 0, err
	}
	return t.submit(ctx, op{reply: make(chan opResult, 1), fn: func(w *runtime.DiskWAL, live *Bundle) error {
		if pos <= w.DurableUpdates() {
			s.met.SyncSkipped.Add(1)
			return nil
		}
		fresh, err := s.verifiedState(payload, root)
		if err != nil {
			return err
		}
		if err := w.InstallSnapshot(sealed, pos); err != nil {
			s.met.SyncFailed.Add(1)
			return err
		}
		*live = *fresh
		t.syncEpoch.Store(epoch)
		t.replBytesPending.Store(0)
		t.replEpochsBehind.Store(0)
		t.publish(w, live)
		s.met.SyncApplied.Add(1)
		return nil
	}})
}

// verifiedState reconstructs a full payload into a factory-fresh bundle
// and checks its manifest root against the peer-advertised one (0 = peer
// did not advertise; skip). A mismatch means the bytes that arrived are
// not the bytes the peer committed to — in-flight corruption the envelope
// CRC missed, or a lying peer — and must never be installed.
func (s *Server) verifiedState(payload []byte, root uint64) (*Bundle, error) {
	fresh := NewBundle(s.cfg.Bundle)
	if err := fresh.MergeBytes(payload); err != nil {
		if errors.Is(err, ErrDigestMismatch) {
			// A bank's bytes contradict the payload's own manifest: the
			// corruption happened after the peer sealed it.
			s.met.SyncDigestReject.Add(1)
		}
		s.met.SyncFailed.Add(1)
		return nil, err
	}
	man, err := fresh.Manifest()
	if err != nil {
		s.met.SyncFailed.Add(1)
		return nil, err
	}
	if root != 0 && man.Root() != root {
		s.met.SyncDigestReject.Add(1)
		s.met.SyncFailed.Add(1)
		return nil, fmt.Errorf("service: payload root %016x != advertised %016x: %w", man.Root(), root, ErrDigestMismatch)
	}
	return fresh, nil
}

// SyncApplyDelta installs a bank-granular delta payload pulled from a peer
// at stream position pos: present banks replace local ones, absent banks
// are kept only when their local bytes already match the peer's manifest,
// and the assembled state must recompute to the advertised root. Any
// insufficiency (local divergence outside the carried banks, root
// mismatch) errors with ErrDeltaInsufficient and changes nothing — the
// syncer falls back to a full pull. A successful install snapshots the
// assembled state so durability never lags the delta.
func (s *Server) SyncApplyDelta(ctx context.Context, tenantName string, pos int, epoch uint64, root uint64, sealed []byte) (int, error) {
	if s.draining.Load() {
		return 0, ErrDraining
	}
	payload, _, err := wire.Open(sealed)
	if err != nil {
		s.met.SyncFailed.Add(1)
		return 0, err
	}
	t, err := s.Tenant(tenantName, true)
	if err != nil {
		return 0, err
	}
	if t.Quarantined() {
		return t.Acked(), fmt.Errorf("%w: %s", ErrQuarantined, t.QuarantineReason())
	}
	if err := s.admit(t); err != nil {
		return 0, err
	}
	return t.submit(ctx, op{reply: make(chan opResult, 1), fn: func(w *runtime.DiskWAL, live *Bundle) error {
		if pos <= w.DurableUpdates() {
			s.met.SyncSkipped.Add(1)
			return nil
		}
		if err := live.InstallBanks(payload); err != nil {
			s.met.SyncFailed.Add(1)
			return err
		}
		man, err := live.Manifest()
		if err != nil {
			return err
		}
		if root != 0 && man.Root() != root {
			// InstallBanks already verified the assembled root against the
			// payload manifest, so reaching here means the payload's own
			// manifest contradicts the peer's advertisement.
			s.met.SyncDigestReject.Add(1)
			s.met.SyncFailed.Add(1)
			return fmt.Errorf("service: delta root %016x != advertised %016x: %w", man.Root(), root, ErrDigestMismatch)
		}
		full, err := live.MarshalBinaryCompact()
		if err != nil {
			return err
		}
		sealedFull := wire.Seal(full)
		if err := w.InstallSnapshot(sealedFull, pos); err != nil {
			s.met.SyncFailed.Add(1)
			return err
		}
		t.syncEpoch.Store(epoch)
		t.replBytesPending.Store(0)
		t.replEpochsBehind.Store(0)
		t.publish(w, live)
		s.met.SyncApplied.Add(1)
		s.met.SyncDeltaPulls.Add(1)
		s.met.SyncDeltaBytes.Add(int64(len(sealed)))
		s.met.SyncDeltaFullBytes.Add(int64(len(sealedFull)))
		return nil
	}})
}

// RepairApply installs a peer's payload into a QUARANTINED tenant and, on
// success, lifts the fence: the payload (full or delta) is reconstructed
// and verified against the advertised root, made durable, and republished.
// The position may move backward or stay equal — a quarantined tenant's
// local position vouches for corrupt bytes, so the peer's verified state
// wins regardless. On a healthy tenant this delegates to the normal
// position-deduped SyncApply.
func (s *Server) RepairApply(ctx context.Context, tenantName string, pos int, epoch uint64, root uint64, sealed []byte) (int, error) {
	if s.draining.Load() {
		return 0, ErrDraining
	}
	t, err := s.Tenant(tenantName, true)
	if err != nil {
		return 0, err
	}
	if !t.Quarantined() {
		return s.SyncApply(ctx, tenantName, pos, epoch, root, sealed)
	}
	payload, _, err := wire.Open(sealed)
	if err != nil {
		s.met.SyncFailed.Add(1)
		return 0, err
	}
	return t.submit(ctx, op{reply: make(chan opResult, 1), fn: func(w *runtime.DiskWAL, live *Bundle) error {
		var fresh *Bundle
		if fullPayload(payload) {
			if fresh, err = s.verifiedState(payload, root); err != nil {
				return err
			}
		} else {
			// Delta repair: graft the peer's diverged banks onto the local
			// (partly rotted) state. RecomputeDigests first so the absent-bank
			// check compares the peer manifest against the bytes as they
			// actually are, not a stale pre-rot cache.
			fresh = live.Clone()
			if err := fresh.RecomputeDigests(); err != nil {
				return err
			}
			if err := fresh.InstallBanks(payload); err != nil {
				s.met.SyncFailed.Add(1)
				return err
			}
			man, err := fresh.Manifest()
			if err != nil {
				return err
			}
			if root != 0 && man.Root() != root {
				s.met.SyncDigestReject.Add(1)
				s.met.SyncFailed.Add(1)
				return fmt.Errorf("service: repair root %016x != advertised %016x: %w", man.Root(), root, ErrDigestMismatch)
			}
			s.met.SyncDeltaPulls.Add(1)
			s.met.SyncDeltaBytes.Add(int64(len(sealed)))
		}
		full, err := fresh.MarshalBinaryCompact()
		if err != nil {
			return err
		}
		if err := w.InstallSnapshot(wire.Seal(full), pos); err != nil {
			s.met.SyncFailed.Add(1)
			return err
		}
		*live = *fresh
		t.syncEpoch.Store(epoch)
		t.replBytesPending.Store(0)
		t.replEpochsBehind.Store(0)
		t.clearQuarantine()
		t.publish(w, live)
		s.met.SyncApplied.Add(1)
		s.met.QuarantineRepairs.Add(1)
		return nil
	}})
}

// fullPayload reports whether a banked payload carries every bank (without
// decoding the banks themselves): header config is 5 uvarints, then
// totalBanks and presentCount.
func fullPayload(payload []byte) bool {
	data := payload
	for i := 0; i < 5; i++ {
		var err error
		if _, data, err = wire.Uvarint(data); err != nil {
			return false
		}
	}
	total, data, err := wire.Uvarint(data)
	if err != nil {
		return false
	}
	present, _, err := wire.Uvarint(data)
	return err == nil && present == total
}

// Flush forces a WAL snapshot for a tenant (exposed for the drain path and
// operational tooling).
func (s *Server) Flush(ctx context.Context, tenantName string) (int, error) {
	t, err := s.Tenant(tenantName, false)
	if err != nil {
		return 0, err
	}
	if t.Quarantined() {
		// Flushing would snapshot suspect bytes over the durable state.
		return t.Acked(), fmt.Errorf("%w: %s", ErrQuarantined, t.QuarantineReason())
	}
	return t.submit(ctx, op{reply: make(chan opResult, 1), fn: func(w *runtime.DiskWAL, live *Bundle) error {
		t.publish(w, live)
		return w.Snapshot(live)
	}})
}

// WALStats reports a tenant's durable byte split for observability rows.
func (s *Server) WALStats(ctx context.Context, tenantName string) (durable, logBytes, snapBytes, replay int, err error) {
	t, err := s.Tenant(tenantName, false)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	_, err = t.submit(ctx, op{reply: make(chan opResult, 1), fn: func(w *runtime.DiskWAL, live *Bundle) error {
		durable, logBytes, snapBytes, replay = w.DurableUpdates(), w.LogBytes(), w.SnapshotBytes(), w.ReplayUpdates()
		return nil
	}})
	return durable, logBytes, snapBytes, replay, err
}

// admit enforces the memory budgets before a mutation is queued: a tenant
// over its own budget is rejected; a global overrun first evicts the
// coldest other tenant to disk and only rejects if that cannot free
// enough.
func (s *Server) admit(t *tenant) error {
	if b := s.cfg.TenantBudget; b > 0 && t.resident.Load() > b {
		return fmt.Errorf("%w: tenant %q resident %d > %d", ErrTenantBudget, t.name, t.resident.Load(), b)
	}
	if b := s.cfg.GlobalBudget; b > 0 {
		for s.globalResident() > b {
			if !s.evictColdest(t.name) {
				return fmt.Errorf("%w: resident %d > %d and nothing evictable", ErrGlobalBudget, s.globalResident(), b)
			}
		}
	}
	return nil
}

// globalResident sums resident bytes across loaded tenants.
func (s *Server) globalResident() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var sum int64
	for _, t := range s.tenants {
		sum += t.resident.Load()
	}
	return sum
}

// evictColdest flushes the least-recently-touched loaded tenant (other
// than keep) to disk and unloads it. Returns false when there is no
// candidate.
func (s *Server) evictColdest(keep string) bool {
	s.mu.Lock()
	var victim *tenant
	for _, t := range s.tenants {
		if t.name == keep || t.closing.Load() {
			continue
		}
		if victim == nil || t.touched.Load() < victim.touched.Load() {
			victim = t
		}
	}
	if victim != nil {
		// The entry stays in the map (closing) until the writer has closed
		// the WAL; Tenant waits on done before reopening the directory.
		victim.closing.Store(true)
	}
	s.mu.Unlock()
	if victim == nil {
		return false
	}
	victim.stopOnce.Do(func() { close(victim.stop) })
	<-victim.done
	s.mu.Lock()
	if s.tenants[victim.name] == victim {
		delete(s.tenants, victim.name)
	}
	s.mu.Unlock()
	s.met.Evictions.Add(1)
	return true
}

// Draining reports whether intake has been stopped.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully shuts the service down: stop intake, let every writer
// flush its queue, snapshot, and close its WAL. Safe to call once; after
// it returns the data directory is a clean cold start.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	ts := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		ts = append(ts, t)
	}
	s.mu.Unlock()
	for _, t := range ts {
		t.closing.Store(true)
		t.stopOnce.Do(func() { close(t.stop) })
	}
	for _, t := range ts {
		select {
		case <-t.done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// Kill hard-stops the server in place: every writer abandons its queue and
// its WAL mid-flight with no flush and no acks — the in-process model of
// SIGKILL the chaos suite uses under -race. Durable state is whatever
// completed writes made it to the files.
func (s *Server) Kill() {
	s.killOnce.Do(func() { close(s.killed) })
	s.mu.Lock()
	ts := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		ts = append(ts, t)
	}
	s.mu.Unlock()
	for _, t := range ts {
		<-t.done
	}
}

// TenantNames lists the loaded tenants.
func (s *Server) TenantNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	return names
}
