package service

import (
	"bytes"
	"strings"
	"testing"

	"graphsketch/internal/stream"
)

func testBundleConfig() BundleConfig {
	return BundleConfig{N: 48, K: 4, Eps: 1.0, SpannerK: 2, Seed: 7}
}

func bundleStream(seed uint64) *stream.Stream {
	return stream.GNP(48, 0.15, seed).WithChurn(300, seed^1)
}

// TestBundleRoundTrip pins that marshal → merge-into-fresh reproduces the
// bundle bit-identically — the property WAL snapshot recovery rides on.
func TestBundleRoundTrip(t *testing.T) {
	st := bundleStream(3)
	b := NewBundle(testBundleConfig())
	b.UpdateBatch(st.Updates)
	data, err := b.MarshalBinaryCompact()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	fresh := NewBundle(testBundleConfig())
	if err := fresh.MergeBytes(data); err != nil {
		t.Fatalf("merge: %v", err)
	}
	got, err := fresh.MarshalBinaryCompact()
	if err != nil {
		t.Fatalf("remarshal: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip not bit-identical")
	}
	if _, err := fresh.MinCut(); err != nil {
		t.Fatalf("mincut on restored bundle: %v", err)
	}
	if res := fresh.Spanner(); res.Spanner.NumEdges() == 0 {
		t.Fatal("spanner empty on restored bundle")
	}
}

// TestBundleLinearity pins that merging two half-stream bundles equals
// ingesting the full stream — the distributed-sites property of the paper
// lifted to the composite.
func TestBundleLinearity(t *testing.T) {
	st := bundleStream(9)
	half := len(st.Updates) / 2

	full := NewBundle(testBundleConfig())
	full.UpdateBatch(st.Updates)

	a := NewBundle(testBundleConfig())
	a.UpdateBatch(st.Updates[:half])
	b := NewBundle(testBundleConfig())
	b.UpdateBatch(st.Updates[half:])
	bBytes, err := b.MarshalBinaryCompact()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if err := a.MergeBytes(bBytes); err != nil {
		t.Fatalf("merge: %v", err)
	}

	got, err := a.MarshalBinaryCompact()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	want, err := full.MarshalBinaryCompact()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("merged halves not bit-identical to full ingest")
	}
}

// TestBundleCloneIndependence pins the epoch-snapshot primitive at the
// bundle level: updating the original never perturbs a clone.
func TestBundleCloneIndependence(t *testing.T) {
	st := bundleStream(5)
	half := len(st.Updates) / 2
	b := NewBundle(testBundleConfig())
	b.UpdateBatch(st.Updates[:half])
	cl := b.Clone()
	at, err := cl.MarshalBinaryCompact()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	b.UpdateBatch(st.Updates[half:])
	after, err := cl.MarshalBinaryCompact()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if !bytes.Equal(at, after) {
		t.Fatal("updating the original perturbed the clone")
	}
	if _, err := cl.MinCut(); err != nil {
		t.Fatalf("clone mincut: %v", err)
	}
}

// TestBundleConfigMismatch pins that a payload from a differently-shaped
// bundle is rejected, not aliased into the wrong hash space.
func TestBundleConfigMismatch(t *testing.T) {
	b := NewBundle(testBundleConfig())
	other := testBundleConfig()
	other.Seed++
	ob := NewBundle(other)
	ob.UpdateBatch(bundleStream(1).Updates[:50])
	data, err := ob.MarshalBinaryCompact()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if err := b.MergeBytes(data); err == nil {
		t.Fatal("merge across configs succeeded")
	}
}

// TestBundleCorruptBytesError pins the decode convention: corrupt member
// payload bytes error (never panic) and leave the bundle unchanged.
func TestBundleCorruptBytesError(t *testing.T) {
	src := NewBundle(testBundleConfig())
	src.UpdateBatch(bundleStream(2).Updates)
	data, err := src.MarshalBinaryCompact()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	dst := NewBundle(testBundleConfig())
	before, _ := dst.MarshalBinaryCompact()
	for _, i := range []int{len(data) / 3, len(data) / 2, len(data) - 1} {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x41
		if err := dst.MergeBytes(bad); err == nil {
			// Some flips only touch spanner-log deltas and decode fine —
			// that is the trusted section; skip those.
			continue
		}
		after, _ := dst.MarshalBinaryCompact()
		if !bytes.Equal(before, after) {
			t.Fatalf("failed merge at flip %d mutated the bundle", i)
		}
	}
}

// TestBundleSpannerPanicsOnCorruptLog pins the corrupt-payload fixture the
// service's panic-isolation middleware is exercised with: a merged payload
// whose spanner-log section names an out-of-range vertex passes MergeBytes
// (the section is trusted at decode time) and panics at Spanner() time.
func TestBundleSpannerPanicsOnCorruptLog(t *testing.T) {
	evil := NewBundle(testBundleConfig())
	evil.UpdateBatch(bundleStream(4).Updates[:100])
	evil.spLog = append(evil.spLog, stream.Update{U: 9999, V: 3, Delta: 1})
	evil.coalesced = len(evil.spLog)
	payload, err := evil.MarshalBinaryCompact()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}

	b := NewBundle(testBundleConfig())
	if err := b.MergeBytes(payload); err != nil {
		t.Fatalf("merge rejected the fixture payload: %v", err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Spanner() on corrupt log did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "corrupt spanner log") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	b.Spanner()
}
