package service

import (
	"bytes"
	"context"
	"errors"
	"os"
	"sync"
	"testing"
	"time"

	"graphsketch/internal/runtime"
	"graphsketch/internal/stream"
)

// chaosConfig keeps snapshot/epoch cadence small so every seed crosses
// several snapshot generations before the kill.
func chaosConfig(dir string) Config {
	return Config{
		Dir:           dir,
		Bundle:        testBundleConfig(),
		SnapshotEvery: 220,
		EpochEvery:    90,
		Fsync:         runtime.FsyncNever, // SIGKILL-safe under any policy; cheapest for tests
		QueryTimeout:  30 * time.Second,
	}
}

// referencePayload ingests the whole stream uninterrupted and returns the
// canonical sealed payload — the bit-identity oracle.
func referencePayload(t *testing.T, st *stream.Stream) []byte {
	t.Helper()
	dir := t.TempDir()
	s, err := NewServer(chaosConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for pos := 0; pos < len(st.Updates); {
		end := min(pos+67, len(st.Updates))
		if _, err := s.Ingest(ctx, "t", pos, st.Updates[pos:end]); err != nil {
			t.Fatalf("reference ingest: %v", err)
		}
		pos = end
	}
	payload, pos, _, err := s.Payload(ctx, "t")
	if err != nil || pos != len(st.Updates) {
		t.Fatalf("reference payload: pos=%d err=%v", pos, err)
	}
	s.Drain(ctx)
	return payload
}

// TestChaosKillRestartRefeed is the service-level recovery guarantee, run
// for 8 pinned seeds: SIGKILL the server mid-ingest at a seeded batch
// offset (sometimes tearing the killed log's tail, modeling a crash inside
// write(2)), restart on the same directory, re-feed ONLY the
// unacknowledged suffix from the reported durable position, and require
// the final payload to be bit-identical to an uninterrupted run.
func TestChaosKillRestartRefeed(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		st := bundleStream(seed)
		want := referencePayload(t, st)
		dir := t.TempDir()
		ctx := context.Background()
		batch := 67

		// Phase 1: feed until the seeded kill offset, then kill while one
		// more batch is in flight — that batch's fate (durable or lost) is
		// exactly what the position handshake resolves.
		s1, err := NewServer(chaosConfig(dir))
		if err != nil {
			t.Fatal(err)
		}
		killAt := int(seed*131) % (len(st.Updates) / 2)
		pos := 0
		for pos < killAt {
			end := min(pos+batch, killAt)
			if _, err := s1.Ingest(ctx, "t", pos, st.Updates[pos:end]); err != nil {
				t.Fatalf("seed %d: ingest: %v", seed, err)
			}
			pos = end
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			end := min(pos+batch, len(st.Updates))
			_, err := s1.Ingest(ctx, "t", pos, st.Updates[pos:end])
			if err != nil && !errors.Is(err, ErrKilled) && !errors.Is(err, ErrPositionConflict) {
				t.Errorf("seed %d: in-flight ingest: %v", seed, err)
			}
		}()
		s1.Kill()
		wg.Wait()

		// Seeded torn tail: some seeds also lose the final bytes of the
		// log, as a real SIGKILL inside the write path would.
		if seed%3 == 0 {
			logPath := runtime.LogPath(s1.Config().Dir + "/t")
			if fi, err := os.Stat(logPath); err == nil && fi.Size() > 40 {
				if err := os.Truncate(logPath, fi.Size()-int64(5+seed)); err != nil {
					t.Fatal(err)
				}
			}
		}

		// Phase 2: restart, ask the server where its durable state ends,
		// and re-feed only from there.
		start := time.Now()
		s2, err := NewServer(chaosConfig(dir))
		if err != nil {
			t.Fatalf("seed %d: restart: %v", seed, err)
		}
		tn, err := s2.Tenant("t", false)
		if err != nil {
			t.Fatalf("seed %d: reload: %v", seed, err)
		}
		refeedFrom := tn.Acked()
		recovery := time.Since(start)
		if refeedFrom > pos+batch {
			t.Fatalf("seed %d: recovered position %d beyond fed prefix %d", seed, refeedFrom, pos+batch)
		}
		for p := refeedFrom; p < len(st.Updates); {
			end := min(p+batch, len(st.Updates))
			acked, err := s2.Ingest(ctx, "t", p, st.Updates[p:end])
			if err != nil {
				t.Fatalf("seed %d: re-feed: %v", seed, err)
			}
			p = acked
		}
		got, finalPos, _, err := s2.Payload(ctx, "t")
		if err != nil {
			t.Fatalf("seed %d: payload: %v", seed, err)
		}
		if finalPos != len(st.Updates) {
			t.Fatalf("seed %d: final position %d, want %d", seed, finalPos, len(st.Updates))
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("seed %d: killed+recovered run not bit-identical (killAt=%d refeed=%d)", seed, killAt, refeedFrom)
		}
		s2.Drain(ctx)
		t.Logf("seed %d: killAt=%d refeed_from=%d recovery=%s", seed, killAt, refeedFrom, recovery)
	}
}

// TestChaosQueryWhileIngesting runs queries against epoch snapshots
// concurrently with ingest and a mid-stream kill; under -race this pins
// that snapshot publication and the single-writer loop share nothing
// mutable with query goroutines, and that degraded answers report
// coverage (staleness) instead of failing.
func TestChaosQueryWhileIngesting(t *testing.T) {
	dir := t.TempDir()
	s, err := NewServer(chaosConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	st := bundleStream(99)

	stop := make(chan struct{})
	var qwg sync.WaitGroup
	for g := 0; g < 3; g++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tn, err := s.Tenant("t", false)
				if err != nil {
					continue // not created yet or mid-reload; retry
				}
				ep := tn.Snapshot()
				if ep.Pos > tn.Acked() {
					t.Error("epoch ahead of durable position")
					return
				}
				if _, err := ep.MinCut(); err != nil {
					t.Errorf("query during ingest: %v", err)
					return
				}
			}
		}()
	}

	half := len(st.Updates) / 2
	for pos := 0; pos < half; {
		end := min(pos+50, half)
		if _, err := s.Ingest(ctx, "t", pos, st.Updates[pos:end]); err != nil {
			t.Fatalf("ingest: %v", err)
		}
		pos = end
	}
	s.Kill()

	s2, err := NewServer(chaosConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	tn, err := s2.Tenant("t", false)
	if err != nil {
		t.Fatal(err)
	}
	for p := tn.Acked(); p < len(st.Updates); {
		end := min(p+50, len(st.Updates))
		acked, err := s2.Ingest(ctx, "t", p, st.Updates[p:end])
		if err != nil {
			t.Fatalf("re-feed: %v", err)
		}
		p = acked
	}
	close(stop)
	qwg.Wait()

	got, _, _, err := s2.Payload(ctx, "t")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, referencePayload(t, st)) {
		t.Fatal("concurrent-query run not bit-identical")
	}
	s2.Drain(ctx)
}

// TestChaosDoubleKill kills, recovers, and kills again before the re-feed
// finishes — the second recovery must still land on an exact position.
func TestChaosDoubleKill(t *testing.T) {
	st := bundleStream(55)
	want := referencePayload(t, st)
	dir := t.TempDir()
	ctx := context.Background()

	s1, err := NewServer(chaosConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	third := len(st.Updates) / 3
	for pos := 0; pos < third; {
		end := min(pos+67, third)
		if _, err := s1.Ingest(ctx, "t", pos, st.Updates[pos:end]); err != nil {
			t.Fatal(err)
		}
		pos = end
	}
	s1.Kill()

	s2, err := NewServer(chaosConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	tn, err := s2.Tenant("t", false)
	if err != nil {
		t.Fatal(err)
	}
	p := tn.Acked()
	for p < 2*third {
		end := min(p+67, 2*third)
		acked, err := s2.Ingest(ctx, "t", p, st.Updates[p:end])
		if err != nil {
			t.Fatal(err)
		}
		p = acked
	}
	s2.Kill()

	s3, err := NewServer(chaosConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	tn, err = s3.Tenant("t", false)
	if err != nil {
		t.Fatal(err)
	}
	for p := tn.Acked(); p < len(st.Updates); {
		end := min(p+67, len(st.Updates))
		acked, err := s3.Ingest(ctx, "t", p, st.Updates[p:end])
		if err != nil {
			t.Fatal(err)
		}
		p = acked
	}
	got, _, _, err := s3.Payload(ctx, "t")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("double-kill run not bit-identical")
	}
	s3.Drain(ctx)
}
