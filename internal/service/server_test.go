package service

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"graphsketch/internal/stream"
)

func testConfig(t *testing.T) Config {
	return Config{
		Dir:           t.TempDir(),
		Bundle:        testBundleConfig(),
		SnapshotEvery: 400,
		EpochEvery:    100,
		QueryTimeout:  30 * time.Second,
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	// A generous per-request deadline: under the race detector a single
	// big-batch ingest can exceed the 5s production default, and a retried
	// POST whose first attempt actually landed turns into a spurious 409.
	return s, &Client{Base: hs.URL, HC: hs.Client(), Timeout: 2 * time.Minute}
}

// TestServeIngestAndQuery drives the full HTTP surface: positioned ingest,
// all four queries with staleness metadata, and the payload endpoint.
func TestServeIngestAndQuery(t *testing.T) {
	s, c := newTestServer(t, testConfig(t))
	defer s.Drain(context.Background())
	st := bundleStream(21)

	pos := 0
	for pos < len(st.Updates) {
		end := min(pos+75, len(st.Updates))
		acked, err := c.Ingest("acme", pos, st.Updates[pos:end])
		if err != nil {
			t.Fatalf("ingest: %v", err)
		}
		if acked != end {
			t.Fatalf("acked %d, want %d", acked, end)
		}
		pos = end
	}

	mc, err := c.MinCut("acme")
	if err != nil {
		t.Fatalf("mincut: %v", err)
	}
	if mc.Acked != len(st.Updates) || mc.Staleness != mc.Acked-mc.Pos || mc.Staleness < 0 {
		t.Fatalf("bad query meta: %+v", mc.QueryMeta)
	}
	if _, err := c.Sparsify("acme"); err != nil {
		t.Fatalf("sparsify: %v", err)
	}
	sp, err := c.Spanner("acme")
	if err != nil {
		t.Fatalf("spanner: %v", err)
	}
	if sp.Edges == 0 {
		t.Fatal("spanner returned no edges")
	}
	fp, err := c.Footprint("acme")
	if err != nil {
		t.Fatalf("footprint: %v", err)
	}
	if fp.WALDurable != len(st.Updates) || fp.Footprint.ResidentBytes == 0 {
		t.Fatalf("bad footprint row: %+v", fp)
	}
	if fp.WALLogBytes+fp.WALSnapshotBytes == 0 {
		t.Fatal("footprint row missing durable byte split")
	}

	// The re-feed handshake: a stale position is a conflict carrying the
	// authoritative ack.
	if _, err := c.Ingest("acme", 0, st.Updates[:10]); err == nil {
		t.Fatal("stale positioned ingest succeeded")
	}

	payload, err := c.Payload("acme")
	if err != nil {
		t.Fatalf("payload: %v", err)
	}
	ref := NewBundle(testBundleConfig())
	ref.UpdateBatch(st.Updates)
	want, err := ref.MarshalBinaryCompact()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := DecodeSealed(payload)
	if err != nil {
		t.Fatalf("open payload: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("served payload not bit-identical to local ingest")
	}
}

// TestServeBudgetIsolation pins admission control: a tenant over its
// budget is rejected while a sibling tenant keeps ingesting — one noisy
// tenant cannot take down the service.
func TestServeBudgetIsolation(t *testing.T) {
	cfg := testConfig(t)
	// Budgets are set just above an empty bundle's preallocated resident
	// size, so the first batch is admitted and the growth from buffered
	// updates crosses the line.
	cfg.TenantBudget = NewBundle(cfg.Bundle).ResidentBytes() + 600
	s, _ := newTestServer(t, cfg)
	defer s.Drain(context.Background())
	ctx := context.Background()
	st := bundleStream(13)

	if _, err := s.Ingest(ctx, "noisy", -1, st.Updates[:50]); err != nil {
		t.Fatalf("first ingest should land: %v", err)
	}
	_, err := s.Ingest(ctx, "noisy", -1, st.Updates[50:100])
	if !errors.Is(err, ErrTenantBudget) {
		t.Fatalf("over-budget ingest: got %v, want ErrTenantBudget", err)
	}
	if s.Metrics().IngestRejected.Load() == 0 {
		t.Fatal("rejection not counted")
	}
	// The sibling's budget is its own: it gets its first batch in too, and
	// its queries keep serving.
	if _, err := s.Ingest(ctx, "quiet", -1, st.Updates[:50]); err != nil {
		t.Fatalf("sibling ingest rejected: %v", err)
	}
	if _, _, _, err := s.Payload(ctx, "quiet"); err != nil {
		t.Fatalf("sibling payload: %v", err)
	}
}

// TestServeEvictColdest pins the global-budget path: crossing it evicts
// the least-recently-touched tenant to disk, and a later touch reloads it
// with nothing lost.
func TestServeEvictColdest(t *testing.T) {
	cfg := testConfig(t)
	// One loaded tenant fits, two do not: admitting the second must evict
	// the first rather than reject.
	cfg.GlobalBudget = NewBundle(cfg.Bundle).ResidentBytes() + 600
	s, _ := newTestServer(t, cfg)
	defer s.Drain(context.Background())
	ctx := context.Background()
	st := bundleStream(17)

	if _, err := s.Ingest(ctx, "cold", -1, st.Updates[:100]); err != nil {
		t.Fatalf("cold ingest: %v", err)
	}
	// Admitting hot evicts cold (the only other tenant).
	if _, err := s.Ingest(ctx, "hot", -1, st.Updates[:100]); err != nil {
		t.Fatalf("hot ingest: %v", err)
	}
	if s.Metrics().Evictions.Load() == 0 {
		t.Fatal("no eviction recorded")
	}
	// Cold's durable state survived eviction; touching it reloads from
	// disk at the exact position.
	tn, err := s.Tenant("cold", false)
	if err != nil {
		t.Fatalf("reload cold: %v", err)
	}
	if tn.Acked() != 100 {
		t.Fatalf("cold position after reload: %d, want 100", tn.Acked())
	}
	if s.Metrics().Recoveries.Load() == 0 {
		t.Fatal("reload not counted as recovery")
	}
}

// TestServeDrain pins graceful shutdown: intake stops, WALs flush and
// snapshot, and a cold restart resumes at the exact position.
func TestServeDrain(t *testing.T) {
	cfg := testConfig(t)
	s, _ := newTestServer(t, cfg)
	ctx := context.Background()
	st := bundleStream(23)

	if _, err := s.Ingest(ctx, "acme", -1, st.Updates[:500]); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := s.Ingest(ctx, "acme", -1, st.Updates[500:600]); !errors.Is(err, ErrDraining) {
		t.Fatalf("ingest during drain: got %v, want ErrDraining", err)
	}

	s2, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer s2.Drain(ctx)
	tn, err := s2.Tenant("acme", false)
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	if tn.Acked() != 500 {
		t.Fatalf("position after drain+restart: %d, want 500", tn.Acked())
	}
	// The drain snapshot means restart replays no log records.
	if _, lb, _, replay, err := s2.WALStats(ctx, "acme"); err != nil || replay != 0 || lb != 0 {
		t.Fatalf("drain did not leave a clean snapshot: log=%d replay=%d err=%v", lb, replay, err)
	}
}

// TestServePanicIsolation pins the middleware: merging the corrupt-payload
// fixture makes exactly the spanner query fail with a 5xx while every
// other request — and the same query on a healthy tenant — keeps serving.
func TestServePanicIsolation(t *testing.T) {
	s, c := newTestServer(t, testConfig(t))
	defer s.Drain(context.Background())
	// The hardened client treats 5xx as failover-class and would re-try the
	// panicking query; this test pins the SERVER's per-request isolation, so
	// give it exactly one attempt.
	c.Attempts = 1
	st := bundleStream(29)

	if _, err := c.Ingest("healthy", -1, st.Updates); err != nil {
		t.Fatalf("ingest: %v", err)
	}

	evil := NewBundle(testBundleConfig())
	evil.UpdateBatch(st.Updates[:100])
	evil.spLog = append(evil.spLog, stream.Update{U: 9999, V: 3, Delta: 1})
	evil.coalesced = len(evil.spLog)
	payload, err := evil.MarshalBinaryCompact()
	if err != nil {
		t.Fatalf("marshal fixture: %v", err)
	}
	if _, err := c.Merge("victim", SealPayload(payload)); err != nil {
		t.Fatalf("merge fixture: %v", err)
	}

	_, err = c.Spanner("victim")
	var ae *apiError
	if !errors.As(err, &ae) || ae.Status != 500 {
		t.Fatalf("corrupt spanner query: got %v, want http 500", err)
	}
	if got := s.Metrics().QueryPanics.Load(); got != 1 {
		t.Fatalf("QueryPanics = %d, want 1", got)
	}
	// One poisoned response, not a poisoned server.
	if _, err := c.MinCut("victim"); err != nil {
		t.Fatalf("mincut on victim after panic: %v", err)
	}
	if _, err := c.Spanner("healthy"); err != nil {
		t.Fatalf("spanner on healthy tenant after panic: %v", err)
	}
	if _, err := c.Ingest("healthy", -1, st.Updates[:0:0]); err != nil {
		t.Fatalf("ingest after panic: %v", err)
	}
	if err := c.Healthz(); err != nil {
		t.Fatalf("healthz after panic: %v", err)
	}
}

// TestServeQueueBackpressure pins that a full queue blocks the sender up
// to its deadline instead of buffering unboundedly.
func TestServeQueueBackpressure(t *testing.T) {
	cfg := testConfig(t)
	cfg.Queue = 1
	s, _ := newTestServer(t, cfg)
	defer s.Drain(context.Background())
	st := bundleStream(31)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	// Hammer ingest from several goroutines; with capacity 1 the queue is
	// constantly full, so every send exercises the backpressure path.
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(g int) {
			var err error
			for i := 0; i < 10 && err == nil; i++ {
				_, err = s.Ingest(ctx, "acme", -1, st.Updates[:25])
			}
			errs <- err
		}(g)
	}
	for g := 0; g < 4; g++ {
		if err := <-errs; err != nil {
			t.Fatalf("backpressured ingest failed: %v", err)
		}
	}
	tn, err := s.Tenant("acme", false)
	if err != nil {
		t.Fatal(err)
	}
	if got := tn.Acked(); got != 4*10*25 {
		t.Fatalf("acked %d, want %d", got, 4*10*25)
	}
}
