package service

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	rt "graphsketch/internal/runtime"
)

// rotSnapshot flips one byte of a tenant's on-disk snapshot past the
// header — the modeled bit-rot the scrubber's disk re-read must catch.
func rotSnapshot(t *testing.T, dir, tenant string) {
	t.Helper()
	path := rt.SnapshotPath(filepath.Join(dir, tenant))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read snapshot: %v", err)
	}
	if len(data) < 64 {
		t.Fatalf("snapshot too small to rot: %d bytes", len(data))
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write rotted snapshot: %v", err)
	}
}

// TestScrubCleanRound: a healthy tenant scrubs clean on all three
// surfaces and the round counter moves.
func TestScrubCleanRound(t *testing.T) {
	n := newReplicaNode(t, "")
	st := bundleStream(41)
	feedNode(t, n, "acme", st.Updates)
	if _, err := n.c.Flush("acme"); err != nil {
		t.Fatalf("flush: %v", err)
	}
	sc := NewScrubber(n.srv, ScrubConfig{Every: time.Hour})
	round := sc.RunOnce(context.Background())
	if round.Tenants != 1 || round.Clean != 1 || round.Quarantined != 0 {
		t.Fatalf("round = %+v, want 1 clean tenant", round)
	}
	if got := n.srv.met.ScrubRounds.Load(); got != 1 {
		t.Fatalf("ScrubRounds = %d, want 1", got)
	}
}

// TestScrubRepairsDiskRot: rot on disk with a clean live state is
// detected and repaired locally by rewriting the snapshot from the live
// bundle; the served payload never changes.
func TestScrubRepairsDiskRot(t *testing.T) {
	dir := t.TempDir()
	n := newReplicaNode(t, dir)
	st := bundleStream(42)
	feedNode(t, n, "acme", st.Updates)
	if _, err := n.c.Flush("acme"); err != nil {
		t.Fatalf("flush: %v", err)
	}
	want, wantPos, _, err := n.c.PayloadAt("acme")
	if err != nil {
		t.Fatalf("payload: %v", err)
	}

	rotSnapshot(t, dir, "acme")
	rep, err := n.srv.ScrubTenant(context.Background(), "acme")
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if rep.DiskOK || !rep.LiveOK || rep.Repaired != "snapshot" || rep.Quarantined {
		t.Fatalf("report = %+v, want disk rot repaired via snapshot", rep)
	}
	if rep, _ = n.srv.ScrubTenant(context.Background(), "acme"); !rep.Clean() {
		t.Fatalf("post-repair scrub = %+v, want clean", rep)
	}
	got, gotPos, _, err := n.c.PayloadAt("acme")
	if err != nil || gotPos != wantPos || !bytes.Equal(got, want) {
		t.Fatalf("payload changed across disk repair: pos %d vs %d, err=%v", gotPos, wantPos, err)
	}
}

// TestScrubRepairsLiveRot: a rotted in-memory bank with a clean WAL is
// detected by the digest tree and rebuilt bit-identically by
// deterministic replay from the WAL mirror.
func TestScrubRepairsLiveRot(t *testing.T) {
	n := newReplicaNode(t, "")
	st := bundleStream(43)
	feedNode(t, n, "acme", st.Updates)
	if _, err := n.c.Flush("acme"); err != nil {
		t.Fatalf("flush: %v", err)
	}
	want, wantPos, _, err := n.c.PayloadAt("acme")
	if err != nil {
		t.Fatalf("payload: %v", err)
	}

	if err := n.srv.InjectBankRot(context.Background(), "acme", 2, 43); err != nil {
		t.Fatalf("inject rot: %v", err)
	}
	rep, err := n.srv.ScrubTenant(context.Background(), "acme")
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if rep.LiveOK || !rep.DiskOK || rep.Repaired != "recover" || rep.Quarantined {
		t.Fatalf("report = %+v, want live rot repaired via recover", rep)
	}
	got, gotPos, _, err := n.c.PayloadAt("acme")
	if err != nil || gotPos != wantPos || !bytes.Equal(got, want) {
		t.Fatalf("live repair not bit-identical: pos %d vs %d, err=%v", gotPos, wantPos, err)
	}
}

// TestQuarantineLifecycle is the end-to-end fence: rot on BOTH repair
// surfaces quarantines the tenant (503 on queries and ingest, position
// still served), a peer repair through the syncer restores byte-identical
// state, and the fence lifts.
func TestQuarantineLifecycle(t *testing.T) {
	primary := newReplicaNode(t, "")
	vdir := t.TempDir()
	victim := newReplicaNode(t, vdir)
	st := bundleStream(44)
	feedNode(t, primary, "acme", st.Updates)

	y := NewSyncer(victim.srv, SyncConfig{Peers: []string{primary.hs.URL}, Timeout: time.Minute, JitterSeed: 7})
	if round := y.RunOnce(context.Background()); round.Applied != 1 {
		t.Fatalf("converge round = %+v", round)
	}
	want, wantPos, _, err := primary.c.PayloadAt("acme")
	if err != nil {
		t.Fatalf("primary payload: %v", err)
	}

	// Rot both surfaces: nothing local is trustworthy, so the scrubber
	// must fence rather than repair.
	if err := victim.srv.InjectBankRot(context.Background(), "acme", 2, 44); err != nil {
		t.Fatalf("inject rot: %v", err)
	}
	rotSnapshot(t, vdir, "acme")
	sc := NewScrubber(victim.srv, ScrubConfig{Every: time.Hour})
	round := sc.RunOnce(context.Background())
	if round.Quarantined != 1 {
		t.Fatalf("scrub round = %+v, want 1 quarantined", round)
	}
	if q, reason := victim.srv.TenantQuarantined("acme"); !q || reason == "" {
		t.Fatalf("quarantined=%v reason=%q, want fenced with a cause", q, reason)
	}
	if victim.srv.met.ScrubFailed.Load() == 0 {
		t.Fatal("ScrubFailed counter did not move")
	}

	// Fenced: queries and ingest refuse, the payload endpoint refuses, but
	// /position still answers with the preserved position and the flag.
	if _, err := victim.c.MinCut("acme"); err == nil {
		t.Fatal("query served while quarantined")
	}
	if _, err := victim.c.Ingest("acme", -1, st.Updates[:1]); err == nil {
		t.Fatal("ingest accepted while quarantined")
	}
	if _, err := victim.c.Payload("acme"); err == nil {
		t.Fatal("payload served while quarantined")
	}
	pi, err := victim.c.PositionEx("acme")
	if err != nil {
		t.Fatalf("position while quarantined: %v", err)
	}
	if !pi.Quarantined || pi.Acked != len(st.Updates) {
		t.Fatalf("position row = %+v, want quarantined at pos %d", pi, len(st.Updates))
	}

	// Peer repair through the normal anti-entropy loop: pull only what
	// diverged, verify against the peer's root, lift the fence.
	round2 := y.RunOnce(context.Background())
	if round2.Repaired != 1 {
		t.Fatalf("repair round = %+v, want 1 repaired", round2)
	}
	if q, _ := victim.srv.TenantQuarantined("acme"); q {
		t.Fatal("still quarantined after peer repair")
	}
	if victim.srv.met.QuarantineRepairs.Load() != 1 {
		t.Fatalf("QuarantineRepairs = %d, want 1", victim.srv.met.QuarantineRepairs.Load())
	}
	got, gotPos, _, err := victim.c.PayloadAt("acme")
	if err != nil || gotPos != wantPos || !bytes.Equal(got, want) {
		t.Fatalf("repair not bit-identical: pos %d vs %d, err=%v", gotPos, wantPos, err)
	}
	if rep, _ := victim.srv.ScrubTenant(context.Background(), "acme"); !rep.Clean() {
		t.Fatalf("post-repair scrub = %+v, want clean", rep)
	}
	if _, err := victim.c.MinCut("acme"); err != nil {
		t.Fatalf("query after repair: %v", err)
	}
}

// TestSyncDigestReject: a sync install whose payload contradicts its own
// manifest, or whose manifest contradicts the peer-advertised root, is
// refused before anything touches local state.
func TestSyncDigestReject(t *testing.T) {
	primary := newReplicaNode(t, "")
	victim := newReplicaNode(t, "")
	st := bundleStream(45)
	feedNode(t, primary, "acme", st.Updates)
	sealed, pos, epoch, root, err := primary.c.PayloadBanksAt("acme", nil)
	if err != nil {
		t.Fatalf("payload: %v", err)
	}

	payload, err := DecodeSealed(sealed)
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Clone(payload)
	tampered[len(tampered)/3] ^= 0x40
	ctx := context.Background()
	if _, err := victim.srv.SyncApply(ctx, "acme", pos, epoch, root, SealPayload(tampered)); !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("tampered payload err = %v, want ErrDigestMismatch", err)
	}
	if _, err := victim.srv.SyncApply(ctx, "acme", pos, epoch, root^0xdeadbeef, sealed); !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("lying root err = %v, want ErrDigestMismatch", err)
	}
	if got := victim.srv.met.SyncDigestReject.Load(); got != 2 {
		t.Fatalf("SyncDigestReject = %d, want 2", got)
	}
	if p, err := victim.c.Position("acme"); err != nil || p != 0 {
		t.Fatalf("position moved on rejected installs: %d err=%v", p, err)
	}

	// The honest install still lands.
	if _, err := victim.srv.SyncApply(ctx, "acme", pos, epoch, root, sealed); err != nil {
		t.Fatalf("honest install: %v", err)
	}
	got, gotPos, _, err := victim.c.PayloadAt("acme")
	if err != nil || gotPos != pos {
		t.Fatalf("post-install payload: pos=%d err=%v", gotPos, err)
	}
	want, _ := DecodeSealed(sealed)
	if gotP, _ := DecodeSealed(got); !bytes.Equal(gotP, want) {
		t.Fatal("honest install diverged")
	}
}

// TestDeltaSync: a follower that shares most banks with the peer pulls
// only the diverged ones — the transfer shrinks while convergence stays
// bit-identical.
func TestDeltaSync(t *testing.T) {
	cfg := testConfig(t)
	cfg.EpochEvery = 1 // publish every batch so /position's manifest is current
	mk := func() *replicaNode {
		c := cfg
		c.Dir = t.TempDir()
		s, err := NewServer(c)
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		hs := httptest.NewServer(s.Handler())
		t.Cleanup(hs.Close)
		return &replicaNode{srv: s, hs: hs, c: &Client{Base: hs.URL, HC: hs.Client(), JitterSeed: 7, Timeout: 2 * time.Minute}}
	}
	primary, follower := mk(), mk()
	st := bundleStream(46)
	prefix := len(st.Updates) - 5
	feedNode(t, primary, "acme", st.Updates[:prefix])

	y := NewSyncer(follower.srv, SyncConfig{Peers: []string{primary.hs.URL}, Timeout: time.Minute, JitterSeed: 7})
	if round := y.RunOnce(context.Background()); round.Applied != 1 {
		t.Fatalf("converge round = %+v", round)
	}

	// A 5-update suffix touches a strict subset of the banks.
	if pos, err := primary.c.Ingest("acme", prefix, st.Updates[prefix:]); err != nil || pos != len(st.Updates) {
		t.Fatalf("suffix feed: pos=%d err=%v", pos, err)
	}
	round := y.RunOnce(context.Background())
	if round.Applied != 1 || round.Deltas != 1 {
		t.Fatalf("delta round = %+v, want 1 delta apply", round)
	}
	deltaB := follower.srv.met.SyncDeltaBytes.Load()
	fullB := follower.srv.met.SyncDeltaFullBytes.Load()
	if deltaB == 0 || fullB == 0 || deltaB >= fullB {
		t.Fatalf("delta bytes %d vs full %d, want a real shrink", deltaB, fullB)
	}

	want, wantPos, _, err := primary.c.PayloadAt("acme")
	if err != nil {
		t.Fatalf("primary payload: %v", err)
	}
	got, gotPos, _, err := follower.c.PayloadAt("acme")
	if err != nil || gotPos != wantPos || !bytes.Equal(got, want) {
		t.Fatalf("delta convergence diverged: pos %d vs %d, err=%v", gotPos, wantPos, err)
	}
}

// TestSyncPeerBackoff pins the per-peer round backoff: a failing peer is
// retried on an exponentially widening, seeded-jitter schedule instead of
// eating a timeout every round, and the ledger shows up in PeerStatus.
func TestSyncPeerBackoff(t *testing.T) {
	n := newReplicaNode(t, "")
	if _, err := n.srv.Tenant("acme", true); err != nil {
		t.Fatal(err)
	}
	y := NewSyncer(n.srv, SyncConfig{Peers: []string{deadEndpoint(t)}, Timeout: 2 * time.Second, JitterSeed: 7})

	y.RunOnce(context.Background()) // round 1: probe fails, ledger opens
	ps := y.PeerStatus()
	if len(ps) != 1 || ps[0].Failures != 1 {
		t.Fatalf("status after failure = %+v, want 1 failure", ps)
	}
	// failures=1 → delay 2 rounds + jitter in [0,1]: round 2 is always
	// inside the backoff window.
	if ps[0].NextEligibleRound < 3 || ps[0].NextEligibleRound > 4 {
		t.Fatalf("next eligible round = %d, want 3 or 4", ps[0].NextEligibleRound)
	}
	if round := y.RunOnce(context.Background()); round.Probed != 0 || round.Failed != 0 {
		t.Fatalf("round 2 = %+v, want fully skipped by backoff", round)
	}
	ps = y.PeerStatus()
	if ps[0].SkippedRounds != 1 || ps[0].Failures != 1 {
		t.Fatalf("status after skipped round = %+v", ps)
	}
	// Drive to the eligible round: the retry fails again and the window
	// doubles (failures=2 → delay 4).
	for i := int64(3); i <= ps[0].NextEligibleRound; i++ {
		y.RunOnce(context.Background())
	}
	ps = y.PeerStatus()
	if ps[0].Failures != 2 {
		t.Fatalf("failures after second attempt = %+v, want 2", ps)
	}
	// The ledger reaches /metricz through the server.
	met, err := n.c.Metrics()
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if len(met.SyncPeers) != 1 || met.SyncPeers[0].Failures != 2 {
		t.Fatalf("metricz sync peers = %+v, want the backoff ledger", met.SyncPeers)
	}
}

// TestCorruptAtOpenSidelines: a snapshot rotted while the server was down
// cannot load — the directory is sidelined, the tenant comes up empty and
// quarantined, and a peer repair restores it.
func TestCorruptAtOpenSidelines(t *testing.T) {
	primary := newReplicaNode(t, "")
	st := bundleStream(47)
	feedNode(t, primary, "acme", st.Updates)

	vdir := t.TempDir()
	victim := newReplicaNode(t, vdir)
	y := NewSyncer(victim.srv, SyncConfig{Peers: []string{primary.hs.URL}, Timeout: time.Minute, JitterSeed: 7})
	if round := y.RunOnce(context.Background()); round.Applied != 1 {
		t.Fatalf("converge round = %+v", round)
	}
	victim.srv.Kill()
	victim.hs.Close()
	rotSnapshot(t, vdir, "acme")

	reborn := newReplicaNode(t, vdir)
	if q, reason := reborn.srv.TenantQuarantined("acme"); !q || reason == "" {
		t.Fatalf("quarantined=%v reason=%q, want sidelined and fenced", q, reason)
	}
	if reborn.srv.met.CorruptSidelined.Load() != 1 {
		t.Fatalf("CorruptSidelined = %d, want 1", reborn.srv.met.CorruptSidelined.Load())
	}
	if _, err := os.Stat(filepath.Join(vdir, "acme.corrupt")); err != nil {
		t.Fatalf("sidelined directory missing: %v", err)
	}

	y2 := NewSyncer(reborn.srv, SyncConfig{Peers: []string{primary.hs.URL}, Timeout: time.Minute, JitterSeed: 7})
	if round := y2.RunOnce(context.Background()); round.Repaired != 1 {
		t.Fatalf("repair round = %+v, want 1 repaired", round)
	}
	want, wantPos, _, err := primary.c.PayloadAt("acme")
	if err != nil {
		t.Fatalf("primary payload: %v", err)
	}
	got, gotPos, _, err := reborn.c.PayloadAt("acme")
	if err != nil || gotPos != wantPos || !bytes.Equal(got, want) {
		t.Fatalf("sideline repair diverged: pos %d vs %d, err=%v", gotPos, wantPos, err)
	}
}
