package service

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"graphsketch"
	"graphsketch/internal/stream"
	"graphsketch/internal/wire"
)

// maxBodyBytes bounds request bodies so a hostile client cannot OOM the
// server before decode hardening even sees the payload.
const maxBodyBytes = 64 << 20

// EncodeUpdates seals one update batch for the ingest endpoint:
// envelope(uvarint count + (uvarint u, uvarint v, zigzag delta) each).
func EncodeUpdates(ups []stream.Update) []byte {
	payload := wire.AppendUvarint(nil, uint64(len(ups)))
	for _, u := range ups {
		payload = wire.AppendUvarint(payload, uint64(u.U))
		payload = wire.AppendUvarint(payload, uint64(u.V))
		payload = wire.AppendUvarint(payload, wire.Zigzag(u.Delta))
	}
	return wire.Seal(payload)
}

// DecodeUpdates inverts EncodeUpdates, rejecting corrupt envelopes and
// malformed varint streams.
func DecodeUpdates(sealed []byte) ([]stream.Update, error) {
	payload, _, err := wire.Open(sealed)
	if err != nil {
		return nil, err
	}
	count, payload, err := wire.Uvarint(payload)
	if err != nil || count > uint64(len(payload)) {
		return nil, graphsketch.ErrBadEncoding
	}
	ups := make([]stream.Update, 0, count)
	for i := uint64(0); i < count; i++ {
		var u, v, zd uint64
		if u, payload, err = wire.Uvarint(payload); err != nil {
			return nil, err
		}
		if v, payload, err = wire.Uvarint(payload); err != nil {
			return nil, err
		}
		if zd, payload, err = wire.Uvarint(payload); err != nil {
			return nil, err
		}
		ups = append(ups, stream.Update{U: int(u), V: int(v), Delta: wire.Unzigzag(zd)})
	}
	if len(payload) != 0 {
		return nil, graphsketch.ErrBadEncoding
	}
	return ups, nil
}

// SealPayload wraps a compact bundle payload in the checksummed wire
// envelope the merge and payload endpoints speak.
func SealPayload(payload []byte) []byte { return wire.Seal(payload) }

// DecodeSealed opens a sealed payload, verifying the envelope.
func DecodeSealed(sealed []byte) ([]byte, error) {
	payload, _, err := wire.Open(sealed)
	return payload, err
}

// QueryMeta rides on every query response: which epoch served it and how
// stale that epoch is relative to the durable position — degraded answers
// report their coverage instead of failing.
type QueryMeta struct {
	Tenant    string `json:"tenant"`
	Pos       int    `json:"pos"`
	Acked     int    `json:"acked"`
	Staleness int    `json:"staleness"`
	Epoch     uint64 `json:"epoch"`
}

// MinCutResponse is the mincut query row.
type MinCutResponse struct {
	QueryMeta
	Value        int64 `json:"value"`
	Level        int   `json:"level"`
	WitnessCut   int64 `json:"witness_cut"`
	WitnessEdges int   `json:"witness_edges"`
}

// SparsifyResponse is the sparsify query row.
type SparsifyResponse struct {
	QueryMeta
	Edges       int   `json:"edges"`
	TotalWeight int64 `json:"total_weight"`
}

// SpannerResponse is the spanner query row.
type SpannerResponse struct {
	QueryMeta
	Edges        int     `json:"edges"`
	StretchBound float64 `json:"stretch_bound"`
	Passes       int     `json:"passes"`
}

// FootprintResponse is the footprint query row, including the durable
// byte split (snapshot vs log) so operators can see what recovery costs,
// and the replica's observed replication lag so staleness behind a primary
// is a reported number, not an inference.
type FootprintResponse struct {
	QueryMeta
	Footprint        graphsketch.Footprint `json:"footprint"`
	WALDurable       int                   `json:"wal_durable_updates"`
	WALReplay        int                   `json:"wal_replay_updates"`
	WALLogBytes      int                   `json:"wal_log_bytes"`
	WALSnapshotBytes int                   `json:"wal_snapshot_bytes"`
	// Replication lag mirrors (zero on a primary or an unreplicated node):
	// the freshest peer position the syncer probed, how far behind it this
	// replica's durable position and epoch are, the payload bytes pending
	// install, and the primary epoch of the last applied install.
	ReplPeerPos       int    `json:"repl_peer_pos"`
	ReplUpdatesBehind int    `json:"repl_updates_behind"`
	ReplEpochsBehind  int    `json:"repl_epochs_behind"`
	ReplBytesPending  int    `json:"repl_bytes_pending"`
	ReplSyncEpoch     uint64 `json:"repl_sync_epoch"`
}

// SpannerEdgeResponse is the spanner-edge membership row: whether (u,v)
// is in the sparse certificate the epoch's spanner build retained.
type SpannerEdgeResponse struct {
	QueryMeta
	U            int     `json:"u"`
	V            int     `json:"v"`
	InSpanner    bool    `json:"in_spanner"`
	Edges        int     `json:"edges"`
	StretchBound float64 `json:"stretch_bound"`
}

// IngestResponse acknowledges a durable batch (or, on a position conflict,
// reports the authoritative position to re-sync from). Position responses
// also carry the tenant's current epoch sequence so the anti-entropy probe
// can report epochs-behind without a second request.
type IngestResponse struct {
	Acked int    `json:"acked"`
	Epoch uint64 `json:"epoch,omitempty"`
	Error string `json:"error,omitempty"`
}

// PositionResponse is the /position row: the durable position plus the
// integrity advertisement — the last published epoch's digest-manifest
// root (and the manifest itself, for delta diffing) and the quarantine
// fence. Served even while quarantined; it is exactly what a repairing
// peer needs to know.
type PositionResponse struct {
	Acked int    `json:"acked"`
	Epoch uint64 `json:"epoch,omitempty"`
	// Root is the epoch manifest's root digest as 16 hex chars (JSON
	// numbers cannot carry a full uint64 faithfully).
	Root string `json:"root,omitempty"`
	// Manifest is the base64 GSD1 encoding of the epoch's digest tree.
	Manifest    string `json:"manifest,omitempty"`
	Quarantined bool   `json:"quarantined,omitempty"`
	Reason      string `json:"reason,omitempty"`
	Error       string `json:"error,omitempty"`
}

// MetricsResponse is the /metricz row.
type MetricsResponse struct {
	IngestBatches  int64 `json:"ingest_batches"`
	IngestUpdates  int64 `json:"ingest_updates"`
	IngestRejected int64 `json:"ingest_rejected"`
	Queries        int64 `json:"queries"`
	QueryPanics    int64 `json:"query_panics"`
	QueryTimeouts  int64 `json:"query_timeouts"`
	Evictions      int64 `json:"evictions"`
	Recoveries     int64 `json:"recoveries"`
	SyncRounds     int64 `json:"sync_rounds"`
	SyncApplied    int64 `json:"sync_applied"`
	SyncSkipped    int64 `json:"sync_skipped"`
	SyncFailed     int64 `json:"sync_failed"`
	// Integrity block: scrub activity, quarantine lifecycle, and the delta
	// anti-entropy byte accounting (delta bytes vs what full pulls would
	// have cost).
	ScrubRounds        int64            `json:"scrub_rounds"`
	ScrubFailed        int64            `json:"scrub_failed"`
	ScrubRepaired      int64            `json:"scrub_repaired"`
	CorruptSidelined   int64            `json:"corrupt_sidelined"`
	QuarantineRepairs  int64            `json:"quarantine_repairs"`
	SyncDigestReject   int64            `json:"sync_digest_reject"`
	SyncDeltaPulls     int64            `json:"sync_delta_pulls"`
	SyncDeltaBytes     int64            `json:"sync_delta_bytes"`
	SyncDeltaFullBytes int64            `json:"sync_delta_full_bytes"`
	Quarantined        []string         `json:"quarantined,omitempty"`
	SyncPeers          []PeerSyncStatus `json:"sync_peers,omitempty"`
	Tenants            []string         `json:"tenants"`
	Draining           bool             `json:"draining"`
	Ready              bool             `json:"ready"`
}

// Handler builds the service's HTTP surface. Every route runs under the
// middleware: a per-request deadline and panic isolation — a panicking
// handler (e.g. a query tripping over a corrupt merged payload) poisons
// exactly one response, bumps a metric, and the server keeps serving.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tenants/{tenant}/updates", s.handleIngest)
	mux.HandleFunc("POST /v1/tenants/{tenant}/merge", s.handleMerge)
	mux.HandleFunc("POST /v1/tenants/{tenant}/sync", s.handleSync)
	mux.HandleFunc("POST /v1/tenants/{tenant}/flush", s.handleFlush)
	mux.HandleFunc("GET /v1/tenants/{tenant}/payload", s.handlePayload)
	mux.HandleFunc("GET /v1/tenants/{tenant}/position", s.handlePosition)
	mux.HandleFunc("GET /v1/tenants/{tenant}/query/{op}", s.handleQuery)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /metricz", s.handleMetrics)
	return s.middleware(mux)
}

// middleware applies the request deadline and the panic boundary.
func (s *Server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
		defer cancel()
		defer func() {
			if rec := recover(); rec != nil {
				s.met.QueryPanics.Add(1)
				writeJSON(w, http.StatusInternalServerError, map[string]string{
					"error": fmt.Sprintf("internal error: %v", rec),
				})
			}
		}()
		r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// httpStatus maps service errors onto status codes.
func (s *Server) httpStatus(err error) int {
	switch {
	case errors.Is(err, ErrUnknownTenant):
		return http.StatusNotFound
	case errors.Is(err, ErrBadTenantName), errors.Is(err, graphsketch.ErrBadEncoding), errors.Is(err, wire.ErrBadEncoding):
		return http.StatusBadRequest
	case errors.Is(err, ErrPositionConflict):
		return http.StatusConflict
	case errors.Is(err, ErrTenantBudget), errors.Is(err, ErrGlobalBudget):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDeltaInsufficient):
		// The delta payload cannot reconstruct the peer state; the caller
		// should retry with a full pull.
		return http.StatusConflict
	case errors.Is(err, ErrDigestMismatch):
		return http.StatusBadRequest
	case errors.Is(err, ErrDraining), errors.Is(err, ErrKilled), errors.Is(err, ErrQuarantined):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		s.met.QueryTimeouts.Add(1)
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// retryAfterSeconds is the backoff hint a 429 carries: budget pressure is
// a load condition, not a permanent state, so clients should come back —
// just not immediately.
const retryAfterSeconds = 1

func (s *Server) fail(w http.ResponseWriter, err error) {
	status := s.httpStatus(err)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", fmt.Sprint(retryAfterSeconds))
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		s.fail(w, err)
		return
	}
	ups, err := DecodeUpdates(body)
	if err != nil {
		s.fail(w, err)
		return
	}
	at := -1
	if q := r.URL.Query().Get("at"); q != "" {
		if _, err := fmt.Sscanf(q, "%d", &at); err != nil {
			s.fail(w, fmt.Errorf("bad at=%q: %w", q, graphsketch.ErrBadEncoding))
			return
		}
	}
	pos, err := s.Ingest(r.Context(), r.PathValue("tenant"), at, ups)
	if err != nil {
		status := s.httpStatus(err)
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", fmt.Sprint(retryAfterSeconds))
		}
		writeJSON(w, status, IngestResponse{Acked: pos, Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, IngestResponse{Acked: pos})
}

// handleSync is the anti-entropy install endpoint: body = sealed bundle
// payload, pos = the stream position it covers on the sending replica,
// epoch = its epoch stamp, root = the sender's advertised manifest root
// (16 hex chars; installs verify the payload reproduces it). mode=delta
// installs a bank-granular delta payload; mode=repair installs into a
// quarantined tenant and lifts the fence on success. Deduped by position
// server-side, so re-sends and reorders are idempotent.
func (s *Server) handleSync(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		s.fail(w, err)
		return
	}
	q := r.URL.Query()
	pos := -1
	if _, err := fmt.Sscanf(q.Get("pos"), "%d", &pos); err != nil || pos < 0 {
		s.fail(w, fmt.Errorf("bad pos=%q: %w", q.Get("pos"), graphsketch.ErrBadEncoding))
		return
	}
	var epoch uint64
	fmt.Sscanf(q.Get("epoch"), "%d", &epoch)
	var root uint64
	if h := q.Get("root"); h != "" {
		if root, err = strconv.ParseUint(h, 16, 64); err != nil {
			s.fail(w, fmt.Errorf("bad root=%q: %w", h, graphsketch.ErrBadEncoding))
			return
		}
	}
	var acked int
	switch mode := q.Get("mode"); mode {
	case "", "full":
		acked, err = s.SyncApply(r.Context(), r.PathValue("tenant"), pos, epoch, root, body)
	case "delta":
		acked, err = s.SyncApplyDelta(r.Context(), r.PathValue("tenant"), pos, epoch, root, body)
	case "repair":
		acked, err = s.RepairApply(r.Context(), r.PathValue("tenant"), pos, epoch, root, body)
	default:
		err = fmt.Errorf("unknown sync mode %q: %w", mode, graphsketch.ErrBadEncoding)
	}
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, IngestResponse{Acked: acked})
}

func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		s.fail(w, err)
		return
	}
	pos, err := s.Merge(r.Context(), r.PathValue("tenant"), body)
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, IngestResponse{Acked: pos})
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	pos, err := s.Flush(r.Context(), r.PathValue("tenant"))
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, IngestResponse{Acked: pos})
}

// handlePayload serves the tenant's sealed banked payload. With no banks
// parameter it carries every bank; ?banks=3,7,12 (possibly empty) carries
// only those — the delta anti-entropy pull. The manifest root rides in
// X-Gsketch-Root so the receiver can verify before decoding anything.
func (s *Server) handlePayload(w http.ResponseWriter, r *http.Request) {
	var banks []int
	if q := r.URL.Query(); q.Has("banks") {
		banks = []int{}
		for _, f := range strings.Split(q.Get("banks"), ",") {
			if f == "" {
				continue
			}
			id, err := strconv.Atoi(f)
			if err != nil {
				s.fail(w, fmt.Errorf("bad banks=%q: %w", q.Get("banks"), graphsketch.ErrBadEncoding))
				return
			}
			banks = append(banks, id)
		}
	}
	sealed, pos, epoch, root, err := s.PayloadBanks(r.Context(), r.PathValue("tenant"), banks)
	if err != nil {
		s.fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Gsketch-Pos", fmt.Sprint(pos))
	w.Header().Set("X-Gsketch-Epoch", fmt.Sprint(epoch))
	w.Header().Set("X-Gsketch-Root", fmt.Sprintf("%016x", root))
	w.Write(sealed)
}

func (s *Server) handlePosition(w http.ResponseWriter, r *http.Request) {
	t, err := s.Tenant(r.PathValue("tenant"), false)
	if err != nil {
		s.fail(w, err)
		return
	}
	resp := PositionResponse{Acked: t.Acked()}
	if ep := t.Snapshot(); ep != nil {
		resp.Epoch = ep.Seq
		if len(ep.Manifest.Banks) > 0 {
			resp.Root = fmt.Sprintf("%016x", ep.Manifest.Root())
			resp.Manifest = base64.StdEncoding.EncodeToString(wire.EncodeManifest(ep.Manifest))
		}
	}
	if t.Quarantined() {
		resp.Quarantined = true
		resp.Reason = t.QuarantineReason()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleQuery serves the four read operations against the tenant's
// freshest epoch clone — never the live bundle, so it never blocks (or
// observes a torn state from) the single writer.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.met.Queries.Add(1)
	t, err := s.Tenant(r.PathValue("tenant"), false)
	if err != nil {
		s.fail(w, err)
		return
	}
	if t.Quarantined() {
		// Corrupt sketch banks fold silently into every linear query answer;
		// a fenced tenant serves no query results at all.
		s.fail(w, fmt.Errorf("%w: %s", ErrQuarantined, t.QuarantineReason()))
		return
	}
	ep := t.Snapshot()
	meta := QueryMeta{Tenant: t.Name(), Pos: ep.Pos, Acked: t.Acked(), Epoch: ep.Seq}
	meta.Staleness = meta.Acked - meta.Pos
	switch op := r.PathValue("op"); op {
	case "mincut":
		res, err := ep.MinCut()
		if err != nil {
			s.fail(w, err)
			return
		}
		writeJSON(w, http.StatusOK, MinCutResponse{QueryMeta: meta, Value: res.Value, Level: res.Level, WitnessCut: res.WitnessCut, WitnessEdges: res.WitnessEdges})
	case "sparsify":
		g, err := ep.Sparsify()
		if err != nil {
			s.fail(w, err)
			return
		}
		writeJSON(w, http.StatusOK, SparsifyResponse{QueryMeta: meta, Edges: g.NumEdges(), TotalWeight: g.TotalWeight()})
	case "spanner":
		res := ep.Spanner()
		writeJSON(w, http.StatusOK, SpannerResponse{QueryMeta: meta, Edges: res.Spanner.NumEdges(), StretchBound: res.StretchBound, Passes: res.Passes})
	case "spanner-edge":
		q := r.URL.Query()
		u, v := -1, -1
		_, errU := fmt.Sscanf(q.Get("u"), "%d", &u)
		_, errV := fmt.Sscanf(q.Get("v"), "%d", &v)
		n := ep.Bundle.Config().N
		if errU != nil || errV != nil || u < 0 || v < 0 || u >= n || v >= n {
			s.fail(w, fmt.Errorf("spanner-edge wants u=&v= in [0,%d): %w", n, graphsketch.ErrBadEncoding))
			return
		}
		in, res := ep.SpannerEdge(u, v)
		writeJSON(w, http.StatusOK, SpannerEdgeResponse{
			QueryMeta: meta, U: u, V: v, InSpanner: in,
			Edges: res.Spanner.NumEdges(), StretchBound: res.StretchBound,
		})
	case "footprint":
		durable, logB, snapB, replay, err := s.WALStats(r.Context(), t.Name())
		if err != nil {
			s.fail(w, err)
			return
		}
		behind := int(t.replPeerPos.Load()) - durable
		if behind < 0 {
			behind = 0
		}
		writeJSON(w, http.StatusOK, FootprintResponse{
			QueryMeta: meta, Footprint: ep.Footprint(),
			WALDurable: durable, WALReplay: replay, WALLogBytes: logB, WALSnapshotBytes: snapB,
			ReplPeerPos:       int(t.replPeerPos.Load()),
			ReplUpdatesBehind: behind,
			ReplEpochsBehind:  int(t.replEpochsBehind.Load()),
			ReplBytesPending:  int(t.replBytesPending.Load()),
			ReplSyncEpoch:     t.syncEpoch.Load(),
		})
	default:
		s.fail(w, fmt.Errorf("unknown query %q: %w", op, graphsketch.ErrBadEncoding))
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": status, "tenants": len(s.TenantNames())})
}

// handleReady is the readiness probe, distinct from /healthz liveness: it
// answers 200 only once Preload has recovered every tenant WAL on disk and
// published each tenant's first epoch, and flips back to 503 on drain. A
// replica that is alive but still replaying WALs must not receive
// failover traffic — its positions would be mid-recovery lies.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if !s.Ready() {
		status := "recovering"
		if s.Draining() {
			status = "draining"
		}
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": status})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "tenants": len(s.TenantNames())})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, MetricsResponse{
		IngestBatches:      s.met.IngestBatches.Load(),
		IngestUpdates:      s.met.IngestUpdates.Load(),
		IngestRejected:     s.met.IngestRejected.Load(),
		Queries:            s.met.Queries.Load(),
		QueryPanics:        s.met.QueryPanics.Load(),
		QueryTimeouts:      s.met.QueryTimeouts.Load(),
		Evictions:          s.met.Evictions.Load(),
		Recoveries:         s.met.Recoveries.Load(),
		SyncRounds:         s.met.SyncRounds.Load(),
		SyncApplied:        s.met.SyncApplied.Load(),
		SyncSkipped:        s.met.SyncSkipped.Load(),
		SyncFailed:         s.met.SyncFailed.Load(),
		ScrubRounds:        s.met.ScrubRounds.Load(),
		ScrubFailed:        s.met.ScrubFailed.Load(),
		ScrubRepaired:      s.met.ScrubRepaired.Load(),
		CorruptSidelined:   s.met.CorruptSidelined.Load(),
		QuarantineRepairs:  s.met.QuarantineRepairs.Load(),
		SyncDigestReject:   s.met.SyncDigestReject.Load(),
		SyncDeltaPulls:     s.met.SyncDeltaPulls.Load(),
		SyncDeltaBytes:     s.met.SyncDeltaBytes.Load(),
		SyncDeltaFullBytes: s.met.SyncDeltaFullBytes.Load(),
		Quarantined:        s.QuarantinedTenants(),
		SyncPeers:          s.peerSyncStatus(),
		Tenants:            s.TenantNames(),
		Draining:           s.Draining(),
		Ready:              s.Ready(),
	})
}
