package service

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"graphsketch/internal/stream"
)

// traceRec records the exact endpoint sequence a client tried, plus every
// backoff sleep it decided on — the failover-ladder tests assert on both
// instead of wall-clock time.
type traceRec struct {
	mu     sync.Mutex
	hits   []string
	sleeps []time.Duration
}

func (r *traceRec) instrument(c *Client) {
	c.Trace = func(endpoint, method, path string) {
		r.mu.Lock()
		r.hits = append(r.hits, endpoint)
		r.mu.Unlock()
	}
	c.Sleep = func(d time.Duration) {
		r.mu.Lock()
		r.sleeps = append(r.sleeps, d)
		r.mu.Unlock()
	}
}

func (r *traceRec) endpoints() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.hits...)
}

func (r *traceRec) slept() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]time.Duration(nil), r.sleeps...)
}

// deadEndpoint returns a URL whose port was just closed: dialing it gets
// connection refused deterministically.
func deadEndpoint(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := l.Addr().String()
	l.Close()
	return "http://" + addr
}

// TestClientRetryAfterHonored pins the throttle rung: 429 responses retry
// on the SAME endpoint and sleep exactly the server's Retry-After, capped
// by BackoffCap.
func TestClientRetryAfterHonored(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n <= 2 {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]any{"error": "over budget"})
			return
		}
		w.Write([]byte(`{"acked":42}`))
	}))
	defer hs.Close()

	rec := &traceRec{}
	c := &Client{Base: hs.URL, HC: hs.Client(), Attempts: 4, BackoffCap: 3 * time.Second, JitterSeed: 7}
	rec.instrument(c)

	pos, err := c.Position("acme")
	if err != nil {
		t.Fatalf("position: %v", err)
	}
	if pos != 42 {
		t.Fatalf("pos = %d, want 42", pos)
	}
	want := []string{hs.URL, hs.URL, hs.URL}
	if got := rec.endpoints(); !equalStrings(got, want) {
		t.Fatalf("endpoint sequence %v, want %v (429 must not rotate)", got, want)
	}
	// Retry-After: 7 is under the 3s-equivalent? No — 7s exceeds the 3s cap,
	// so both sleeps must be clamped to exactly BackoffCap.
	slept := rec.slept()
	if len(slept) != 2 || slept[0] != 3*time.Second || slept[1] != 3*time.Second {
		t.Fatalf("sleeps %v, want exactly [3s 3s] (Retry-After capped by BackoffCap)", slept)
	}
}

// TestClientRetryAfterUnderCap: a Retry-After below the cap is honored
// verbatim, no jitter applied.
func TestClientRetryAfterUnderCap(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"acked":1}`))
	}))
	defer hs.Close()

	rec := &traceRec{}
	c := &Client{Base: hs.URL, HC: hs.Client(), JitterSeed: 7}
	rec.instrument(c)
	if _, err := c.Position("acme"); err != nil {
		t.Fatalf("position: %v", err)
	}
	if slept := rec.slept(); len(slept) != 1 || slept[0] != time.Second {
		t.Fatalf("sleeps %v, want exactly [1s]", slept)
	}
}

// TestClientConnRefusedFailover pins the transport rung: connection
// refused rotates to the next endpoint, and the client then STAYS on the
// endpoint that worked (stickiness).
func TestClientConnRefusedFailover(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"acked":9}`))
	}))
	defer hs.Close()
	dead := deadEndpoint(t)

	rec := &traceRec{}
	c := &Client{Endpoints: []string{dead, hs.URL}, Attempts: 4, JitterSeed: 7}
	rec.instrument(c)

	pos, err := c.Position("acme")
	if err != nil {
		t.Fatalf("position: %v", err)
	}
	if pos != 9 {
		t.Fatalf("pos = %d, want 9", pos)
	}
	if got, want := rec.endpoints(), []string{dead, hs.URL}; !equalStrings(got, want) {
		t.Fatalf("endpoint sequence %v, want %v", got, want)
	}
	if c.Current() != hs.URL {
		t.Fatalf("Current() = %s, want sticky %s", c.Current(), hs.URL)
	}
	// Second request must go straight to the live endpoint: no re-probe of
	// the dead one.
	if _, err := c.Position("acme"); err != nil {
		t.Fatalf("position 2: %v", err)
	}
	if got, want := rec.endpoints(), []string{dead, hs.URL, hs.URL}; !equalStrings(got, want) {
		t.Fatalf("endpoint sequence %v, want %v (sticky after failover)", got, want)
	}
}

// TestClient5xxFailover pins the server-error rung: a 500 rotates exactly
// like a transport error.
func TestClient5xxFailover(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"wal sealed"}`, http.StatusInternalServerError)
	}))
	defer bad.Close()
	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"acked":3}`))
	}))
	defer good.Close()

	rec := &traceRec{}
	c := &Client{Endpoints: []string{bad.URL, good.URL}, JitterSeed: 7}
	rec.instrument(c)
	pos, err := c.Position("acme")
	if err != nil || pos != 3 {
		t.Fatalf("position = %d, %v; want 3, nil", pos, err)
	}
	if got, want := rec.endpoints(), []string{bad.URL, good.URL}; !equalStrings(got, want) {
		t.Fatalf("endpoint sequence %v, want %v", got, want)
	}
}

// TestClientDeadlineBoundedAttempts pins the deadline rung: a hung server
// burns exactly one attempt per endpoint rotation and the call returns
// after Attempts tries — never hangs, never spins.
func TestClientDeadlineBoundedAttempts(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer hung.Close()

	rec := &traceRec{}
	c := &Client{
		Base:        hung.URL,
		Timeout:     50 * time.Millisecond,
		Attempts:    3,
		BackoffBase: 10 * time.Millisecond,
		BackoffCap:  80 * time.Millisecond,
		JitterSeed:  7,
	}
	rec.instrument(c)

	start := time.Now()
	_, err := c.Position("acme")
	if err == nil {
		t.Fatal("expected deadline error, got nil")
	}
	if !strings.Contains(err.Error(), "deadline") && !strings.Contains(err.Error(), "Timeout") {
		t.Fatalf("error %v does not mention the deadline", err)
	}
	if got := rec.endpoints(); len(got) != 3 {
		t.Fatalf("made %d attempts, want exactly 3", len(got))
	}
	// Sleeps are stubbed, so total wall time is ~3 deadlines, bounded well
	// under a second; a livelock or un-stubbed sleep would blow this.
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("took %v, want bounded by deadlines only", el)
	}
	// Between 3 attempts there are exactly 2 backoffs, each within the
	// jitter envelope [d/2, d) of the capped exponential schedule.
	slept := rec.slept()
	if len(slept) != 2 {
		t.Fatalf("recorded %d sleeps, want 2", len(slept))
	}
	for i, d := range slept {
		full := 10 * time.Millisecond << uint(i)
		if d < full/2 || d >= full {
			t.Fatalf("sleep[%d] = %v outside jitter envelope [%v, %v)", i, d, full/2, full)
		}
	}
}

// TestClientFatalNoRetry pins the fatal rung: a 404 returns immediately —
// exactly one attempt, no sleeps.
func TestClientFatalNoRetry(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"unknown tenant"}`, http.StatusNotFound)
	}))
	defer hs.Close()

	rec := &traceRec{}
	c := &Client{Base: hs.URL, HC: hs.Client(), JitterSeed: 7}
	rec.instrument(c)
	_, err := c.Position("ghost")
	if err == nil {
		t.Fatal("expected 404 error")
	}
	if len(rec.endpoints()) != 1 || len(rec.slept()) != 0 {
		t.Fatalf("attempts=%d sleeps=%d, want 1 and 0 (4xx must not retry)", len(rec.endpoints()), len(rec.slept()))
	}
}

// TestClientBackoffDeterministic: two clients with the same JitterSeed
// draw identical sleep sequences, and a different seed diverges — the
// chaos sims rely on this for reproducible schedules.
func TestClientBackoffDeterministic(t *testing.T) {
	mk := func(seed uint64) []time.Duration {
		c := &Client{JitterSeed: seed, BackoffBase: 20 * time.Millisecond, BackoffCap: time.Second}
		var out []time.Duration
		for i := 0; i < 6; i++ {
			out = append(out, c.backoff(i))
		}
		return out
	}
	a, b, other := mk(99), mk(99), mk(100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != other[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter sequences")
	}
}

// fakeIngestServer is a stub replica speaking the position-addressed
// ingest protocol: batches must assert the current acked position or get
// a 409 carrying the authoritative one.
type fakeIngestServer struct {
	mu    sync.Mutex
	acked int
	posts int
}

func (f *fakeIngestServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tenants/{tenant}/updates", func(w http.ResponseWriter, r *http.Request) {
		ups, err := DecodeUpdates(mustReadAll(r))
		if err != nil {
			http.Error(w, `{"error":"bad encoding"}`, http.StatusBadRequest)
			return
		}
		at := -1
		fmt.Sscanf(r.URL.Query().Get("at"), "%d", &at)
		f.mu.Lock()
		defer f.mu.Unlock()
		f.posts++
		if at != f.acked {
			w.WriteHeader(http.StatusConflict)
			json.NewEncoder(w).Encode(map[string]any{"error": "position conflict", "acked": f.acked})
			return
		}
		f.acked += len(ups)
		json.NewEncoder(w).Encode(map[string]any{"acked": f.acked})
	})
	mux.HandleFunc("GET /v1/tenants/{tenant}/position", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		json.NewEncoder(w).Encode(map[string]any{"acked": f.acked})
	})
	return mux
}

func mustReadAll(r *http.Request) []byte {
	data := make([]byte, 0, 1024)
	buf := make([]byte, 4096)
	for {
		n, err := r.Body.Read(buf)
		data = append(data, buf[:n]...)
		if err != nil {
			return data
		}
	}
}

// TestClientIngestStream409Resync pins the exactly-once resync: the
// server's durable position starts ahead of the client's idea (as after a
// failover landed on a replica that already has a prefix), the first batch
// 409s, and the client re-feeds from the authoritative position — no
// update applied twice, no update skipped.
func TestClientIngestStream409Resync(t *testing.T) {
	fake := &fakeIngestServer{acked: 120} // replica already holds [0,120)
	hs := httptest.NewServer(fake.handler())
	defer hs.Close()

	ups := make([]stream.Update, 300)
	for i := range ups {
		ups[i] = stream.Update{U: i % 7, V: i%7 + 1, Delta: 1}
	}
	rec := &traceRec{}
	c := &Client{Base: hs.URL, HC: hs.Client(), JitterSeed: 7}
	rec.instrument(c)

	pos, _, err := c.IngestStream("acme", ups, 100)
	if err != nil {
		t.Fatalf("ingest stream: %v", err)
	}
	if pos != len(ups) {
		t.Fatalf("final position %d, want %d", pos, len(ups))
	}
	if fake.acked != len(ups) {
		t.Fatalf("server acked %d, want %d (exactly-once violated)", fake.acked, len(ups))
	}
	// One 409 (at=0 vs acked=120), then 120->220, 220->300: 3 posts total.
	if fake.posts != 3 {
		t.Fatalf("server saw %d posts, want 3 (1 conflict + 2 accepted)", fake.posts)
	}
}

// TestClientIngestStreamFailoverMidStream: the primary dies partway
// through the stream; the client rotates to the follower, re-reads its
// position, and finishes the stream exactly-once on the survivor.
func TestClientIngestStreamFailoverMidStream(t *testing.T) {
	primary := &fakeIngestServer{}
	follower := &fakeIngestServer{}
	var killAfter = 2 // primary serves 2 posts then hangs up
	var pmu sync.Mutex
	ph := primary.handler()
	ps := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		pmu.Lock()
		dead := killAfter <= 0
		if r.Method == http.MethodPost {
			killAfter--
		}
		pmu.Unlock()
		if dead {
			// Simulate a killed process: slam the connection.
			hj, _ := w.(http.Hijacker)
			conn, _, _ := hj.Hijack()
			conn.Close()
			return
		}
		ph.ServeHTTP(w, r)
	}))
	defer ps.Close()
	fs := httptest.NewServer(follower.handler())
	defer fs.Close()

	ups := make([]stream.Update, 500)
	for i := range ups {
		ups[i] = stream.Update{U: i % 9, V: i%9 + 1, Delta: 1}
	}
	rec := &traceRec{}
	c := &Client{Endpoints: []string{ps.URL, fs.URL}, JitterSeed: 7}
	rec.instrument(c)
	// The follower replicated the primary's first durable batch out of
	// band (anti-entropy), as the real cluster would.
	follower.acked = 100

	pos, _, err := c.IngestStream("acme", ups, 100)
	if err != nil {
		t.Fatalf("ingest stream: %v", err)
	}
	if pos != len(ups) {
		t.Fatalf("final position %d, want %d", pos, len(ups))
	}
	if follower.acked != len(ups) {
		t.Fatalf("follower acked %d, want %d (stream must finish on survivor)", follower.acked, len(ups))
	}
	if c.Current() != fs.URL {
		t.Fatalf("Current() = %s, want follower %s after failover", c.Current(), fs.URL)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
