package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"graphsketch/internal/stream"
)

// Client is the minimal HTTP client for a gsketch serve instance, used by
// the chaos driver and the examples. It implements the exact re-feed
// protocol: acks carry durable positions, and after a server restart the
// caller re-syncs with Position and re-feeds only the unacknowledged
// suffix.
type Client struct {
	Base string // e.g. "http://127.0.0.1:8080"
	HC   *http.Client
}

func (c *Client) hc() *http.Client {
	if c.HC != nil {
		return c.HC
	}
	return http.DefaultClient
}

// apiError carries the server's JSON error body plus the HTTP status.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string { return fmt.Sprintf("service: http %d: %s", e.Status, e.Msg) }

func (c *Client) do(method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.Base+path, rd)
	if err != nil {
		return err
	}
	resp, err := c.hc().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.Unmarshal(data, &e)
		if e.Error == "" {
			e.Error = string(data)
		}
		return &apiError{Status: resp.StatusCode, Msg: e.Error}
	}
	if out == nil {
		return nil
	}
	if raw, ok := out.(*[]byte); ok {
		*raw = data
		return nil
	}
	return json.Unmarshal(data, out)
}

// Ingest sends one batch; at >= 0 asserts the current durable position.
// Returns the acknowledged durable position.
func (c *Client) Ingest(tenant string, at int, ups []stream.Update) (int, error) {
	path := fmt.Sprintf("/v1/tenants/%s/updates", tenant)
	if at >= 0 {
		path += fmt.Sprintf("?at=%d", at)
	}
	var resp IngestResponse
	if err := c.do(http.MethodPost, path, EncodeUpdates(ups), &resp); err != nil {
		return 0, err
	}
	return resp.Acked, nil
}

// Position reports the tenant's durable position — the re-feed point.
func (c *Client) Position(tenant string) (int, error) {
	var resp IngestResponse
	if err := c.do(http.MethodGet, fmt.Sprintf("/v1/tenants/%s/position", tenant), nil, &resp); err != nil {
		return 0, err
	}
	return resp.Acked, nil
}

// Payload fetches the tenant's sealed compact bundle payload.
func (c *Client) Payload(tenant string) ([]byte, error) {
	var raw []byte
	if err := c.do(http.MethodGet, fmt.Sprintf("/v1/tenants/%s/payload", tenant), nil, &raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// Merge posts a sealed bundle payload into the tenant.
func (c *Client) Merge(tenant string, sealed []byte) (int, error) {
	var resp IngestResponse
	if err := c.do(http.MethodPost, fmt.Sprintf("/v1/tenants/%s/merge", tenant), sealed, &resp); err != nil {
		return 0, err
	}
	return resp.Acked, nil
}

// Flush forces a WAL snapshot.
func (c *Client) Flush(tenant string) (int, error) {
	var resp IngestResponse
	if err := c.do(http.MethodPost, fmt.Sprintf("/v1/tenants/%s/flush", tenant), nil, &resp); err != nil {
		return 0, err
	}
	return resp.Acked, nil
}

// MinCut runs the mincut query.
func (c *Client) MinCut(tenant string) (MinCutResponse, error) {
	var resp MinCutResponse
	err := c.do(http.MethodGet, fmt.Sprintf("/v1/tenants/%s/query/mincut", tenant), nil, &resp)
	return resp, err
}

// Sparsify runs the sparsify query.
func (c *Client) Sparsify(tenant string) (SparsifyResponse, error) {
	var resp SparsifyResponse
	err := c.do(http.MethodGet, fmt.Sprintf("/v1/tenants/%s/query/sparsify", tenant), nil, &resp)
	return resp, err
}

// Spanner runs the spanner query.
func (c *Client) Spanner(tenant string) (SpannerResponse, error) {
	var resp SpannerResponse
	err := c.do(http.MethodGet, fmt.Sprintf("/v1/tenants/%s/query/spanner", tenant), nil, &resp)
	return resp, err
}

// Footprint runs the footprint query.
func (c *Client) Footprint(tenant string) (FootprintResponse, error) {
	var resp FootprintResponse
	err := c.do(http.MethodGet, fmt.Sprintf("/v1/tenants/%s/query/footprint", tenant), nil, &resp)
	return resp, err
}

// Healthz probes readiness.
func (c *Client) Healthz() error {
	return c.do(http.MethodGet, "/healthz", nil, nil)
}

// Metrics fetches the counter block.
func (c *Client) Metrics() (MetricsResponse, error) {
	var resp MetricsResponse
	err := c.do(http.MethodGet, "/metricz", nil, &resp)
	return resp, err
}
