package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"encoding/base64"
	"strings"

	"graphsketch/internal/hashing"
	"graphsketch/internal/stream"
	"graphsketch/internal/wire"
)

// Client is the hardened HTTP client for a set of replicated gsketch serve
// instances. Every request runs under a per-request deadline and a capped
// exponential backoff with seeded jitter; transport failures, 5xx
// responses, and deadline expiries rotate to the next endpoint (failover),
// 429 responses honor the server's Retry-After, and 409 position
// conflicts surface the authoritative position so the caller can re-sync.
// The zero value plus a Base URL behaves like the old minimal client,
// just with sane deadlines and retries.
//
// Reads served by a follower are as correct as the follower's last sync;
// the response's QueryMeta reports the serving replica's staleness, and
// FootprintResponse reports its replication lag — staleness is always
// observable, never silent.
type Client struct {
	// Base is the single-endpoint form, kept for compatibility. Ignored
	// when Endpoints is non-empty.
	Base string
	// Endpoints is the replica rotation, primary first by convention. The
	// client is sticky: it keeps using the endpoint that last worked and
	// rotates only on failover-class errors.
	Endpoints []string
	// HC is the underlying HTTP client (http.DefaultClient when nil). Its
	// own Timeout is left alone; per-request deadlines come from Timeout.
	HC *http.Client
	// Timeout is the per-request deadline (default 5s).
	Timeout time.Duration
	// Attempts caps the total tries per call across all endpoints
	// (default 4).
	Attempts int
	// BackoffBase and BackoffCap shape the exponential backoff between
	// retries: sleep = min(BackoffBase << attempt, BackoffCap), scaled by a
	// jitter factor in [0.5, 1.0] (defaults 25ms and 2s).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// JitterSeed seeds the deterministic jitter sequence (tests pin it; 0
	// means seed 1). Two clients with the same seed sleep identically.
	JitterSeed uint64
	// Sleep replaces time.Sleep between retries — tests stub it to record
	// backoff decisions instead of waiting them out.
	Sleep func(time.Duration)
	// Trace, when set, observes every individual HTTP attempt with the
	// endpoint it targets — the failover-ladder tests pin exact sequences
	// through it.
	Trace func(endpoint, method, path string)

	mu      sync.Mutex
	cur     int    // sticky index into endpoints()
	jitterN uint64 // jitter draw counter
}

// Option defaults, exported so tests and docs state them once.
const (
	DefaultTimeout     = 5 * time.Second
	DefaultAttempts    = 4
	DefaultBackoffBase = 25 * time.Millisecond
	DefaultBackoffCap  = 2 * time.Second
)

func (c *Client) hc() *http.Client {
	if c.HC != nil {
		return c.HC
	}
	return http.DefaultClient
}

func (c *Client) endpoints() []string {
	if len(c.Endpoints) > 0 {
		return c.Endpoints
	}
	return []string{c.Base}
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return DefaultTimeout
}

func (c *Client) attempts() int {
	if c.Attempts > 0 {
		return c.Attempts
	}
	return DefaultAttempts
}

func (c *Client) sleep(d time.Duration) {
	if c.Sleep != nil {
		c.Sleep(d)
		return
	}
	time.Sleep(d)
}

// backoff returns the jittered, capped exponential delay for a retry
// attempt (0-based). Deterministic per JitterSeed: the i-th draw of a
// client's lifetime is a pure function of (seed, i).
func (c *Client) backoff(attempt int) time.Duration {
	base := c.BackoffBase
	if base <= 0 {
		base = DefaultBackoffBase
	}
	cap := c.BackoffCap
	if cap <= 0 {
		cap = DefaultBackoffCap
	}
	d := base << uint(attempt)
	if d > cap || d <= 0 {
		d = cap
	}
	seed := c.JitterSeed
	if seed == 0 {
		seed = 1
	}
	c.mu.Lock()
	n := c.jitterN
	c.jitterN++
	c.mu.Unlock()
	// Jitter factor in [0.5, 1.0): decorrelates replicas retrying after a
	// shared failure without ever sleeping longer than the capped delay.
	h := hashing.Mix64(seed + n*0x9E3779B97F4A7C15)
	frac := 0.5 + float64(h>>11)/float64(1<<53)/2
	return time.Duration(float64(d) * frac)
}

// apiError carries the server's JSON error body plus the HTTP status and,
// for 409 position conflicts, the authoritative position to re-sync from.
type apiError struct {
	Status int
	Msg    string
	Acked  int
}

func (e *apiError) Error() string { return fmt.Sprintf("service: http %d: %s", e.Status, e.Msg) }

// ConflictPosition reports whether err is a 409 position conflict and, if
// so, the authoritative durable position the server answered with — the
// exactly-once re-feed point.
func ConflictPosition(err error) (int, bool) {
	var ae *apiError
	if errors.As(err, &ae) && ae.Status == http.StatusConflict {
		return ae.Acked, true
	}
	return 0, false
}

// retryClass buckets one attempt's outcome.
type retryClass int

const (
	classOK       retryClass = iota
	classFatal               // 4xx other than 429: retrying cannot help
	classThrottle            // 429: same endpoint, honor Retry-After
	classFailover            // transport error, 5xx, deadline: next endpoint
)

// classify maps an attempt result onto the retry ladder.
func classify(status int, err error) retryClass {
	switch {
	case err != nil:
		// Connection refused, reset, EOF, deadline exceeded — everything the
		// transport can throw is a replica-local failure: rotate.
		return classFailover
	case status == http.StatusOK:
		return classOK
	case status == http.StatusTooManyRequests:
		return classThrottle
	case status >= 500:
		return classFailover
	default:
		return classFatal
	}
}

// retryAfter parses a 429's Retry-After (seconds form), capped by the
// client's backoff cap so a hostile or confused server cannot park the
// client.
func (c *Client) retryAfter(h http.Header) (time.Duration, bool) {
	v := h.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0, false
	}
	d := time.Duration(secs) * time.Second
	cap := c.BackoffCap
	if cap <= 0 {
		cap = DefaultBackoffCap
	}
	if d > cap {
		d = cap
	}
	return d, true
}

// attempt performs one HTTP round trip against one endpoint under the
// per-request deadline, returning the status, body, and headers.
func (c *Client) attempt(endpoint, method, path string, body []byte) (int, []byte, http.Header, error) {
	if c.Trace != nil {
		c.Trace(endpoint, method, path)
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.timeout())
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, endpoint+path, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	resp, err := c.hc().Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, data, resp.Header, nil
}

// do runs the retry/failover ladder for one logical request. Each try runs
// against the sticky current endpoint; failover-class outcomes rotate to
// the next endpoint and back off, throttle-class outcomes honor
// Retry-After on the same endpoint, and fatal-class responses (including
// 409 conflicts) return immediately with the decoded server error.
func (c *Client) do(method, path string, body []byte, out any) error {
	_, err := c.doH(method, path, body, out)
	return err
}

// doH is do exposing the success response's headers (the payload endpoint
// stamps position and epoch there).
func (c *Client) doH(method, path string, body []byte, out any) (http.Header, error) {
	eps := c.endpoints()
	var lastErr error
	for attempt := 0; attempt < c.attempts(); attempt++ {
		c.mu.Lock()
		ep := eps[c.cur%len(eps)]
		c.mu.Unlock()
		status, data, hdr, err := c.attempt(ep, method, path, body)
		switch classify(status, err) {
		case classOK:
			if out == nil {
				return hdr, nil
			}
			if raw, ok := out.(*[]byte); ok {
				*raw = data
				return hdr, nil
			}
			return hdr, json.Unmarshal(data, out)
		case classFatal:
			return nil, decodeAPIError(status, data)
		case classThrottle:
			lastErr = decodeAPIError(status, data)
			if attempt == c.attempts()-1 {
				break // out of budget: do not sleep for nothing
			}
			if d, ok := c.retryAfter(hdr); ok {
				c.sleep(d)
			} else {
				c.sleep(c.backoff(attempt))
			}
		case classFailover:
			if err != nil {
				lastErr = fmt.Errorf("service: %s %s on %s: %w", method, path, ep, err)
			} else {
				lastErr = decodeAPIError(status, data)
			}
			c.mu.Lock()
			c.cur = (c.cur + 1) % len(eps)
			c.mu.Unlock()
			if attempt < c.attempts()-1 {
				c.sleep(c.backoff(attempt))
			}
		}
	}
	return nil, lastErr
}

// decodeAPIError turns a non-200 body into an *apiError, preserving the
// acked position a 409 conflict reports.
func decodeAPIError(status int, data []byte) error {
	var e struct {
		Error string `json:"error"`
		Acked int    `json:"acked"`
	}
	json.Unmarshal(data, &e)
	if e.Error == "" {
		e.Error = string(data)
	}
	return &apiError{Status: status, Msg: e.Error, Acked: e.Acked}
}

// Current returns the sticky endpoint the next request will try first.
func (c *Client) Current() string {
	eps := c.endpoints()
	c.mu.Lock()
	defer c.mu.Unlock()
	return eps[c.cur%len(eps)]
}

// Ingest sends one batch; at >= 0 asserts the current durable position.
// Returns the acknowledged durable position.
func (c *Client) Ingest(tenant string, at int, ups []stream.Update) (int, error) {
	path := fmt.Sprintf("/v1/tenants/%s/updates", tenant)
	if at >= 0 {
		path += fmt.Sprintf("?at=%d", at)
	}
	var resp IngestResponse
	if err := c.do(http.MethodPost, path, EncodeUpdates(ups), &resp); err != nil {
		return 0, err
	}
	return resp.Acked, nil
}

// IngestStream drives a whole update stream through the position-addressed
// ingest protocol with failover, exactly-once: every batch asserts the
// stream position it starts at, a 409 conflict re-syncs to the server's
// authoritative position (the batch raced a duplicate or a failover
// landed on a replica at a different position), and a failover-class
// failure re-reads the new replica's position before re-feeding — the
// server's position handshake deduplicates whatever the retries repeated.
// Returns the final acknowledged position (== len(ups) on success) and
// the total encoded bytes actually sent (the re-feed cost).
func (c *Client) IngestStream(tenant string, ups []stream.Update, batch int) (int, int64, error) {
	if batch <= 0 {
		batch = 256
	}
	var sent int64
	pos := 0
	// Conflicts and failovers both re-position; only genuinely unresolvable
	// errors (fatal class or exhausted attempts with no position to be had)
	// escape. resyncs bounds livelock: a position that never advances across
	// len(ups) consecutive resyncs means the cluster is rejecting us.
	resyncs := 0
	for pos < len(ups) {
		end := min(pos+batch, len(ups))
		enc := EncodeUpdates(ups[pos:end])
		acked, err := c.Ingest(tenant, pos, ups[pos:end])
		sent += int64(len(enc))
		switch {
		case err == nil:
			pos = acked
			resyncs = 0
		default:
			if at, ok := ConflictPosition(err); ok {
				pos = at
				resyncs++
			} else {
				// Failover path: the ladder already rotated endpoints; ask the
				// current replica where its durable state ends and re-feed
				// from there.
				at, perr := c.Position(tenant)
				if perr != nil {
					return pos, sent, fmt.Errorf("ingest failed and position re-sync failed: %w (ingest: %v)", perr, err)
				}
				pos = at
				resyncs++
			}
			if resyncs > len(ups)+c.attempts() {
				return pos, sent, fmt.Errorf("service: ingest livelock at position %d: %w", pos, err)
			}
		}
	}
	return pos, sent, nil
}

// Position reports the tenant's durable position — the re-feed point.
func (c *Client) Position(tenant string) (int, error) {
	var resp IngestResponse
	if err := c.do(http.MethodGet, fmt.Sprintf("/v1/tenants/%s/position", tenant), nil, &resp); err != nil {
		return 0, err
	}
	return resp.Acked, nil
}

// PositionInfo is the extended position probe: durable position, epoch,
// the epoch's digest-tree root and full manifest (when the server
// advertises one), and whether the tenant is fenced by a scrub failure.
type PositionInfo struct {
	Acked       int
	Epoch       uint64
	Root        uint64
	Quarantined bool
	Manifest    wire.Manifest
	HasManifest bool
}

// PositionEx fetches the full position row the delta syncer diffs against:
// manifest-first anti-entropy compares digest trees before moving any
// bank bytes.
func (c *Client) PositionEx(tenant string) (PositionInfo, error) {
	var resp PositionResponse
	if err := c.do(http.MethodGet, fmt.Sprintf("/v1/tenants/%s/position", tenant), nil, &resp); err != nil {
		return PositionInfo{}, err
	}
	pi := PositionInfo{Acked: resp.Acked, Epoch: resp.Epoch, Quarantined: resp.Quarantined}
	if resp.Root != "" {
		pi.Root, _ = strconv.ParseUint(resp.Root, 16, 64)
	}
	if resp.Manifest != "" {
		if raw, err := base64.StdEncoding.DecodeString(resp.Manifest); err == nil {
			if man, rest, derr := wire.DecodeManifest(raw); derr == nil && len(rest) == 0 {
				pi.Manifest = man
				pi.HasManifest = true
			}
		}
	}
	return pi, nil
}

// Payload fetches the tenant's sealed compact bundle payload.
func (c *Client) Payload(tenant string) ([]byte, error) {
	var raw []byte
	if err := c.do(http.MethodGet, fmt.Sprintf("/v1/tenants/%s/payload", tenant), nil, &raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// PayloadAt fetches the tenant's sealed compact payload together with the
// exact stream position and epoch it was captured at (the anti-entropy
// pull: the position is the dedup key, the epoch is the staleness stamp).
func (c *Client) PayloadAt(tenant string) (sealed []byte, pos int, epoch uint64, err error) {
	var raw []byte
	hdr, err := c.doH(http.MethodGet, fmt.Sprintf("/v1/tenants/%s/payload", tenant), nil, &raw)
	if err != nil {
		return nil, 0, 0, err
	}
	pos, err = strconv.Atoi(hdr.Get("X-Gsketch-Pos"))
	if err != nil {
		return nil, 0, 0, fmt.Errorf("service: payload missing position stamp: %w", err)
	}
	epoch, _ = strconv.ParseUint(hdr.Get("X-Gsketch-Epoch"), 10, 64)
	return raw, pos, epoch, nil
}

// PayloadBanksAt fetches a bank-granular payload: nil banks means the
// full payload, a (possibly empty) slice pulls only those bank ids — the
// delta anti-entropy transfer. Every form carries the full GSD1 manifest,
// and the response's advertised root rides back for end-to-end
// verification of the install.
func (c *Client) PayloadBanksAt(tenant string, banks []int) (sealed []byte, pos int, epoch uint64, root uint64, err error) {
	path := fmt.Sprintf("/v1/tenants/%s/payload", tenant)
	if banks != nil {
		ids := make([]string, len(banks))
		for i, b := range banks {
			ids[i] = strconv.Itoa(b)
		}
		path += "?banks=" + strings.Join(ids, ",")
	}
	var raw []byte
	hdr, err := c.doH(http.MethodGet, path, nil, &raw)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	pos, err = strconv.Atoi(hdr.Get("X-Gsketch-Pos"))
	if err != nil {
		return nil, 0, 0, 0, fmt.Errorf("service: payload missing position stamp: %w", err)
	}
	epoch, _ = strconv.ParseUint(hdr.Get("X-Gsketch-Epoch"), 10, 64)
	root, _ = strconv.ParseUint(hdr.Get("X-Gsketch-Root"), 16, 64)
	return raw, pos, epoch, root, nil
}

// Sync posts a sealed payload as the tenant's complete state at the
// primary's position pos and epoch (the anti-entropy push form; the server
// dedupes by position, so re-sends are idempotent). Returns the tenant's
// durable position after the install.
func (c *Client) Sync(tenant string, pos int, epoch uint64, sealed []byte) (int, error) {
	var resp IngestResponse
	path := fmt.Sprintf("/v1/tenants/%s/sync?pos=%d&epoch=%d", tenant, pos, epoch)
	if err := c.do(http.MethodPost, path, sealed, &resp); err != nil {
		return 0, err
	}
	return resp.Acked, nil
}

// Merge posts a sealed bundle payload into the tenant.
func (c *Client) Merge(tenant string, sealed []byte) (int, error) {
	var resp IngestResponse
	if err := c.do(http.MethodPost, fmt.Sprintf("/v1/tenants/%s/merge", tenant), sealed, &resp); err != nil {
		return 0, err
	}
	return resp.Acked, nil
}

// Flush forces a WAL snapshot.
func (c *Client) Flush(tenant string) (int, error) {
	var resp IngestResponse
	if err := c.do(http.MethodPost, fmt.Sprintf("/v1/tenants/%s/flush", tenant), nil, &resp); err != nil {
		return 0, err
	}
	return resp.Acked, nil
}

// MinCut runs the mincut query.
func (c *Client) MinCut(tenant string) (MinCutResponse, error) {
	var resp MinCutResponse
	err := c.do(http.MethodGet, fmt.Sprintf("/v1/tenants/%s/query/mincut", tenant), nil, &resp)
	return resp, err
}

// Sparsify runs the sparsify query.
func (c *Client) Sparsify(tenant string) (SparsifyResponse, error) {
	var resp SparsifyResponse
	err := c.do(http.MethodGet, fmt.Sprintf("/v1/tenants/%s/query/sparsify", tenant), nil, &resp)
	return resp, err
}

// Spanner runs the spanner query.
func (c *Client) Spanner(tenant string) (SpannerResponse, error) {
	var resp SpannerResponse
	err := c.do(http.MethodGet, fmt.Sprintf("/v1/tenants/%s/query/spanner", tenant), nil, &resp)
	return resp, err
}

// SpannerEdge asks whether edge (u,v) is in the tenant's sparse spanner
// certificate, served from the epoch snapshot.
func (c *Client) SpannerEdge(tenant string, u, v int) (SpannerEdgeResponse, error) {
	var resp SpannerEdgeResponse
	err := c.do(http.MethodGet, fmt.Sprintf("/v1/tenants/%s/query/spanner-edge?u=%d&v=%d", tenant, u, v), nil, &resp)
	return resp, err
}

// Footprint runs the footprint query.
func (c *Client) Footprint(tenant string) (FootprintResponse, error) {
	var resp FootprintResponse
	err := c.do(http.MethodGet, fmt.Sprintf("/v1/tenants/%s/query/footprint", tenant), nil, &resp)
	return resp, err
}

// Healthz probes liveness.
func (c *Client) Healthz() error {
	return c.do(http.MethodGet, "/healthz", nil, nil)
}

// Readyz probes readiness: an error (503) means the server is still
// recovering tenant WALs or is draining.
func (c *Client) Readyz() error {
	return c.do(http.MethodGet, "/readyz", nil, nil)
}

// Metrics fetches the counter block.
func (c *Client) Metrics() (MetricsResponse, error) {
	var resp MetricsResponse
	err := c.do(http.MethodGet, "/metricz", nil, &resp)
	return resp, err
}
