package baseline

import (
	"math"
	"testing"

	"graphsketch/internal/core/spanner"
	"graphsketch/internal/core/subgraph"
	"graphsketch/internal/graph"
	"graphsketch/internal/stream"
)

func TestTriangleReservoirOnClique(t *testing.T) {
	// Every wedge in a clique is closed.
	tr := NewTriangleReservoir(12, 50, 1)
	tr.Ingest(stream.Complete(12))
	f, c := tr.ClosedFraction()
	if c == 0 {
		t.Fatal("no samples")
	}
	if f != 1.0 {
		t.Fatalf("clique closure fraction %v, want 1", f)
	}
}

func TestTriangleReservoirOnStar(t *testing.T) {
	// A star has wedges but no triangles.
	tr := NewTriangleReservoir(12, 50, 2)
	tr.Ingest(stream.Star(12))
	f, c := tr.ClosedFraction()
	if c == 0 {
		t.Fatal("no samples")
	}
	if f != 0 {
		t.Fatalf("star closure fraction %v, want 0", f)
	}
}

func TestTriangleReservoirEstimateAccuracy(t *testing.T) {
	st := stream.GNP(40, 0.3, 3)
	g := graph.FromStream(st)
	want := float64(subgraph.CountTriangles(g))
	if want < 20 {
		t.Skip("too few triangles")
	}
	tr := NewTriangleReservoir(40, 400, 5)
	tr.Ingest(st)
	got := tr.TriangleEstimate()
	if math.Abs(got-want)/want > 0.5 {
		t.Fatalf("triangle estimate %v, exact %v", got, want)
	}
}

func TestTriangleReservoirBreaksOnDeletions(t *testing.T) {
	// The documented failure mode: deletions invalidate the baseline,
	// while the paper's sketch handles them (E8 bench).
	st := stream.Complete(10)
	st.Updates = append(st.Updates, stream.Update{U: 0, V: 1, Delta: -1})
	tr := NewTriangleReservoir(10, 20, 7)
	tr.Ingest(st)
	if !tr.Broken() {
		t.Fatal("deletion must mark the insert-only baseline broken")
	}
}

func TestGreedySpannerStretch(t *testing.T) {
	for _, k := range []int{2, 3, 4} {
		g := graph.FromStream(stream.GNP(50, 0.3, 11))
		h := GreedySpanner(g, k)
		s := spanner.MeasureStretch(g, h, 10, 13)
		if s > float64(2*k-1) {
			t.Fatalf("k=%d: greedy stretch %.2f exceeds %d", k, s, 2*k-1)
		}
		if h.NumEdges() > g.NumEdges() {
			t.Fatal("spanner bigger than graph")
		}
	}
}

func TestGreedySpannerCompresses(t *testing.T) {
	g := graph.FromStream(stream.GNP(60, 0.5, 17))
	h := GreedySpanner(g, 3)
	if h.NumEdges() >= g.NumEdges()/2 {
		t.Fatalf("greedy k=3 kept %d of %d edges", h.NumEdges(), g.NumEdges())
	}
}

func TestUniformCutSamplerPreservesLargeCuts(t *testing.T) {
	st := stream.Complete(40)
	g := graph.FromStream(st)
	us := NewUniformCutSampler(40, 0.5, 19)
	us.Ingest(st)
	sp := us.Sparsifier()
	side := make([]bool, 40)
	for i := 0; i < 20; i++ {
		side[i] = true
	}
	gv, hv := g.CutValue(side), sp.CutValue(side)
	rel := math.Abs(float64(hv-gv)) / float64(gv)
	if rel > 0.25 {
		t.Fatalf("bisection cut error %.3f (exact %d, sampled %d)", rel, gv, hv)
	}
}

func TestUniformCutSamplerConsistentUnderDeletion(t *testing.T) {
	// Insert then delete an edge: must vanish from the sample regardless
	// of the keep decision (consistency of the hash).
	us := NewUniformCutSampler(10, 1.0, 23)
	us.Update(1, 2, 1)
	us.Update(1, 2, -1)
	if us.Sparsifier().NumEdges() != 0 {
		t.Fatal("deleted edge survived in uniform sampler")
	}
}

func BenchmarkGreedySpannerN60(b *testing.B) {
	g := graph.FromStream(stream.GNP(60, 0.3, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GreedySpanner(g, 3)
	}
}
