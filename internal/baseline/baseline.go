// Package baseline implements the insert-only comparators the paper
// positions its results against (Secs. 1.2 and 4):
//
//   - TriangleReservoir: a Buriol-et-al.-style one-pass sampling estimator
//     for the triangle fraction. It is only correct for insert-only
//     streams; a deletion invalidates its reservoir — the failure mode the
//     E8 bench demonstrates and the paper's sketches fix.
//   - GreedySpanner: the classic Althofer et al. offline/insert-only greedy
//     (2k-1)-spanner (add an edge iff the current spanner distance between
//     its endpoints exceeds 2k-1).
//   - UniformCutSampler: Karger-style uniform edge sampling at a fixed
//     probability p (Lemma 3.1) — the non-adaptive baseline whose k must be
//     guessed in advance, unlike Fig 1's level search.
package baseline

import (
	"graphsketch/internal/graph"
	"graphsketch/internal/hashing"
	"graphsketch/internal/stream"
)

// TriangleReservoir estimates the fraction of "wedge or triangle" triples
// that are triangles via sampled wedges, in one insert-only pass: sample s
// uniform wedges (pairs of adjacent edges) by reservoir over the wedge
// count, then check closure against edges seen later in the stream
// (the Buriol et al. incidence-stream technique, adapted to edge streams).
type TriangleReservoir struct {
	n       int
	s       int
	rng     *hashing.RNG
	adj     []map[int]bool // full adjacency (the baseline is not small-space for closure checking; it is a semantics baseline, not a space baseline)
	wedges  int64
	samples []wedgeSample
	broken  bool // set if a deletion arrives
}

type wedgeSample struct {
	a, b, c int // wedge b-a, b-c (center b); closed if edge {a,c} present
}

// NewTriangleReservoir creates an estimator with s wedge samples.
func NewTriangleReservoir(n, s int, seed uint64) *TriangleReservoir {
	adj := make([]map[int]bool, n)
	for i := range adj {
		adj[i] = map[int]bool{}
	}
	return &TriangleReservoir{n: n, s: s, rng: hashing.NewRNG(seed), adj: adj}
}

// Broken reports whether the stream contained a deletion (which this
// insert-only baseline cannot handle).
func (tr *TriangleReservoir) Broken() bool { return tr.broken }

// Update consumes one stream element. Deletions mark the estimator broken.
func (tr *TriangleReservoir) Update(u, v int, delta int64) {
	if delta < 0 {
		tr.broken = true
		return
	}
	if u == v || tr.adj[u][v] {
		return
	}
	// New wedges created by this edge: centered at u (with u's other
	// neighbors) and centered at v.
	for b, ends := range map[int][2]int{u: {v, 0}, v: {u, 0}} {
		other := ends[0]
		for w := range tr.adj[b] {
			if w == other {
				continue
			}
			tr.wedges++
			// Reservoir-sample this wedge.
			if len(tr.samples) < tr.s {
				tr.samples = append(tr.samples, wedgeSample{a: other, b: b, c: w})
			} else if int64(tr.rng.Intn(int(tr.wedges))) < int64(tr.s) {
				tr.samples[tr.rng.Intn(tr.s)] = wedgeSample{a: other, b: b, c: w}
			}
		}
	}
	tr.adj[u][v] = true
	tr.adj[v][u] = true
}

// Ingest consumes a whole stream.
func (tr *TriangleReservoir) Ingest(st *stream.Stream) {
	for _, up := range st.Updates {
		tr.Update(up.U, up.V, up.Delta)
	}
}

// ClosedFraction estimates the transitivity: the probability a uniform
// wedge is closed into a triangle. Multiply by wedges/3 for a triangle
// count. Returns (estimate, sampleCount).
func (tr *TriangleReservoir) ClosedFraction() (float64, int) {
	if len(tr.samples) == 0 {
		return 0, 0
	}
	closed := 0
	for _, w := range tr.samples {
		if tr.adj[w.a][w.c] {
			closed++
		}
	}
	return float64(closed) / float64(len(tr.samples)), len(tr.samples)
}

// TriangleEstimate returns the estimated triangle count:
// wedges * closedFraction / 3 (each triangle contains 3 wedges).
func (tr *TriangleReservoir) TriangleEstimate() float64 {
	f, c := tr.ClosedFraction()
	if c == 0 {
		return 0
	}
	return f * float64(tr.wedges) / 3
}

// GreedySpanner builds the classic greedy (2k-1)-spanner offline: process
// edges in arbitrary deterministic order; keep an edge iff the spanner-so-
// far distance between its endpoints exceeds 2k-1. Size O(n^{1+1/k}) by the
// girth argument; the quality baseline for E9/E10.
func GreedySpanner(g *graph.Graph, k int) *graph.Graph {
	h := graph.New(g.N())
	bound := 2*k - 1
	for _, e := range g.Edges() {
		d := boundedDistance(h, e.U, e.V, bound)
		if d > bound {
			h.AddEdge(e.U, e.V, 1)
		}
	}
	return h
}

// boundedDistance returns d_H(u,v) if <= bound, else bound+1 (BFS cut off
// at depth bound).
func boundedDistance(h *graph.Graph, u, v, bound int) int {
	if u == v {
		return 0
	}
	adj := h.Adjacency()
	dist := map[int]int{u: 0}
	queue := []int{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		if dist[x] >= bound {
			continue
		}
		for _, nb := range adj[x] {
			if _, seen := dist[nb.To]; !seen {
				dist[nb.To] = dist[x] + 1
				if nb.To == v {
					return dist[nb.To]
				}
				queue = append(queue, nb.To)
			}
		}
	}
	return bound + 1
}

// UniformCutSampler sparsifies by keeping each edge independently with
// probability p and weight 1/p (Karger, Lemma 3.1), using a consistent hash
// so dynamic streams work. Unlike Fig 1/2 it has no level search: p must be
// guessed from the (unknown) min cut, the weakness the paper's adaptive
// level structure removes.
type UniformCutSampler struct {
	n   int
	p   float64
	mix hashing.Mixer
	g   *graph.Graph
}

// NewUniformCutSampler creates the sampler.
func NewUniformCutSampler(n int, p float64, seed uint64) *UniformCutSampler {
	return &UniformCutSampler{n: n, p: p, mix: hashing.NewMixer(seed), g: graph.New(n)}
}

// Update consumes one stream element (consistent keep decision per edge).
func (us *UniformCutSampler) Update(u, v int, delta int64) {
	if u == v || delta == 0 {
		return
	}
	idx := stream.EdgeIndex(u, v, us.n)
	if us.mix.Uniform01(idx) < us.p {
		us.g.AddEdge(u, v, delta)
	}
}

// Ingest consumes a whole stream.
func (us *UniformCutSampler) Ingest(st *stream.Stream) {
	for _, up := range st.Updates {
		us.Update(up.U, up.V, up.Delta)
	}
}

// Sparsifier returns the weighted sample: kept edges scaled by 1/p.
func (us *UniformCutSampler) Sparsifier() *graph.Graph {
	out := graph.New(us.n)
	scale := int64(1.0/us.p + 0.5)
	for _, e := range us.g.Edges() {
		out.AddEdge(e.U, e.V, e.W*scale)
	}
	return out
}
