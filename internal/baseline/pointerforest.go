package baseline

import (
	"graphsketch/internal/graph"
	"graphsketch/internal/hashing"
	"graphsketch/internal/l0"
	"graphsketch/internal/stream"
)

// PointerForest is the frozen pre-arena ForestSketch implementation: one
// heap-allocated *l0.Sampler per (round, vertex), each holding its cells
// behind two levels of slice indirection, and Boruvka aggregation by
// cloning samplers into a map. It is kept verbatim as the comparison
// baseline for the internal/sketchcore arena benchmarks
// (BenchmarkForestIngest*) and as an independent semantics oracle — it
// must produce the same samples as the arena-backed agm.ForestSketch built
// from the same seed.
type PointerForest struct {
	n      int
	rounds int
	seed   uint64
	node   [][]*l0.Sampler // [round][vertex]
}

// pointerForestReps mirrors agm's samplerReps.
const pointerForestReps = 4

// pointerBoruvkaRounds mirrors agm's boruvkaRounds.
func pointerBoruvkaRounds(n int) int {
	r := 4
	for m := 1; m < n; m <<= 1 {
		r++
	}
	return r
}

// NewPointerForest creates the baseline sketch for graphs on n vertices,
// with hash derivations identical to agm.NewForestSketch(n, seed).
func NewPointerForest(n int, seed uint64) *PointerForest {
	fs := &PointerForest{n: n, rounds: pointerBoruvkaRounds(n), seed: seed}
	universe := uint64(n) * uint64(n)
	fs.node = make([][]*l0.Sampler, fs.rounds)
	for r := 0; r < fs.rounds; r++ {
		bank := make([]*l0.Sampler, n)
		rs := hashing.DeriveSeed(seed, uint64(r))
		for v := 0; v < n; v++ {
			bank[v] = l0.NewWithReps(universe, rs, pointerForestReps)
		}
		fs.node[r] = bank
	}
	return fs
}

// Update applies a signed multiplicity change to edge {u, v}.
func (fs *PointerForest) Update(u, v int, delta int64) {
	if u == v || delta == 0 {
		return
	}
	if u > v {
		u, v = v, u
	}
	idx := stream.EdgeIndex(u, v, fs.n)
	for r := 0; r < fs.rounds; r++ {
		fs.node[r][u].Update(idx, delta)
		fs.node[r][v].Update(idx, -delta)
	}
}

// Ingest replays a whole stream.
func (fs *PointerForest) Ingest(s *stream.Stream) {
	for _, up := range s.Updates {
		fs.Update(up.U, up.V, up.Delta)
	}
}

// SpanningForest extracts a spanning forest via Boruvka with the original
// map-of-cloned-samplers aggregation.
func (fs *PointerForest) SpanningForest() []graph.Edge {
	dsu := graph.NewDSU(fs.n)
	var forest []graph.Edge
	for r := 0; r < fs.rounds && dsu.Count() > 1; r++ {
		aggs := make(map[int]*l0.Sampler)
		for v := 0; v < fs.n; v++ {
			root := dsu.Find(v)
			if agg, ok := aggs[root]; ok {
				agg.Add(fs.node[r][v])
			} else {
				aggs[root] = fs.node[r][v].Clone()
			}
		}
		for _, agg := range aggs {
			idx, w, ok := agg.Sample()
			if !ok {
				continue
			}
			u, v := stream.EdgeFromIndex(idx, fs.n)
			mult := w
			if mult < 0 {
				mult = -mult
			}
			if dsu.Union(u, v) {
				forest = append(forest, graph.Edge{U: u, V: v, W: mult})
			}
		}
	}
	return forest
}

// ComponentCount returns the number of connected components.
func (fs *PointerForest) ComponentCount() int {
	return fs.n - len(fs.SpanningForest())
}

// Words returns the memory footprint in 64-bit words.
func (fs *PointerForest) Words() int {
	w := 0
	for r := range fs.node {
		for v := range fs.node[r] {
			w += fs.node[r][v].Words()
		}
	}
	return w
}
