// Retained pre-overhaul spanner construction path: scalar per-update
// replays of the raw stream, one freshly allocated sampler per live vertex
// (or supernode) per pass, and map-based contraction bookkeeping. Kept as
// the perf baseline for the `spanner-build` / `recurse-connect` bench rows
// and as the reference implementation the banked/planned path is
// property-tested bit-identical against.
//
// One deliberate change from the historical code: RECURSECONNECT's center
// relabeling used to iterate a Go map (`for c := range centers`), making
// supernode ids — and therefore all later-pass sampler seeds and the final
// spanner — nondeterministic across runs of the same seed. The baseline
// relabels centers in ascending id order instead, which is what the greedy
// loop produces anyway; the rebuilt path matches this deterministic order.
package baseline

import (
	"math"
	"sort"

	"graphsketch/internal/core/spanner"
	"graphsketch/internal/graph"
	"graphsketch/internal/hashing"
	"graphsketch/internal/l0"
	"graphsketch/internal/sketchcore"
	"graphsketch/internal/stream"
)

// SpannerResult reports a baseline-built spanner.
type SpannerResult struct {
	Spanner *graph.Graph
	Passes  int
}

// BaswanaSen is the retained scalar BASWANA-SEN emulation: k full stream
// replays through per-update sampler feeds, fresh sketch families per
// phase.
func BaswanaSen(st *stream.Stream, k int, seed uint64) SpannerResult {
	n := st.N
	if k < 1 {
		k = 1
	}
	sp := graph.New(n)
	// member[v] = root of the tree containing v, or -1 if v has retired.
	member := make([]int, n)
	for v := range member {
		member[v] = v
	}
	isRoot := make([]bool, n)
	for v := range isRoot {
		isRoot[v] = true
	}
	sampleProb := math.Pow(float64(n), -1.0/float64(k))
	rng := hashing.NewRNG(hashing.DeriveSeed(seed, 0xb5))
	groupBudget := int(math.Ceil(4*math.Pow(float64(n), 1.0/float64(k)))) + 4

	addedStamp := make([]int, n)
	for i := range addedStamp {
		addedStamp[i] = -1
	}
	stamp := 0
	var collectBuf []uint64

	passes := 0
	for phase := 1; phase <= k-1; phase++ {
		selected := make([]bool, n)
		for v := 0; v < n; v++ {
			if isRoot[v] && rng.Float64() < sampleProb {
				selected[v] = true
			}
		}
		passSeed := hashing.DeriveSeed(seed, uint64(phase))
		liveSlot := make([]int, n)
		var joinSeeds []uint64
		for v := 0; v < n; v++ {
			if member[v] == -1 {
				liveSlot[v] = -1
				continue
			}
			liveSlot[v] = len(joinSeeds)
			joinSeeds = append(joinSeeds, hashing.DeriveSeed(passSeed, uint64(v)))
		}
		if len(joinSeeds) == 0 {
			break
		}
		joinSamp := sketchcore.New(sketchcore.Config{
			Slots: len(joinSeeds), Universe: uint64(n), Reps: l0.DefaultReps, SlotSeeds: joinSeeds,
		})
		groupSamp := make([]*spanner.GroupSampler, n)
		for v := 0; v < n; v++ {
			if member[v] == -1 {
				continue
			}
			groupSamp[v] = spanner.NewGroupSampler(uint64(n), groupBudget, hashing.DeriveSeed(passSeed, 0x10000+uint64(v)))
		}
		for _, up := range st.Updates {
			if up.U == up.V {
				continue
			}
			feed := func(a, b int) {
				if member[a] == -1 || member[b] == -1 {
					return
				}
				if member[a] == member[b] {
					return
				}
				if selected[member[b]] {
					joinSamp.Update(liveSlot[a], uint64(b), up.Delta)
				}
				groupSamp[a].Update(uint64(member[b]), uint64(b), up.Delta)
			}
			feed(up.U, up.V)
			feed(up.V, up.U)
		}
		passes++
		newMember := make([]int, n)
		copy(newMember, member)
		for v := 0; v < n; v++ {
			if member[v] == -1 {
				continue
			}
			if selected[member[v]] {
				continue
			}
			if w, _, ok := joinSamp.Sample(liveSlot[v]); ok {
				sp.AddEdge(v, int(w), 1)
				newMember[v] = member[w]
				continue
			}
			collectBuf = groupSamp[v].CollectInto(collectBuf[:0])
			for _, item := range collectBuf {
				w := int(item)
				g := member[w]
				if g == -1 || g == member[v] || addedStamp[g] == stamp {
					continue
				}
				addedStamp[g] = stamp
				sp.AddEdge(v, w, 1)
			}
			stamp++
			newMember[v] = -1
		}
		member = newMember
		for v := range isRoot {
			isRoot[v] = isRoot[v] && selected[v]
		}
	}

	// Final clean-up pass: one edge to every adjacent tree.
	passSeed := hashing.DeriveSeed(seed, 0xf1a1)
	groupSamp := make([]*spanner.GroupSampler, n)
	for v := 0; v < n; v++ {
		if member[v] != -1 {
			groupSamp[v] = spanner.NewGroupSampler(uint64(n), groupBudget, hashing.DeriveSeed(passSeed, uint64(v)))
		}
	}
	for _, up := range st.Updates {
		if up.U == up.V {
			continue
		}
		feed := func(a, b int) {
			if member[a] == -1 || member[b] == -1 || member[a] == member[b] {
				return
			}
			groupSamp[a].Update(uint64(member[b]), uint64(b), up.Delta)
		}
		feed(up.U, up.V)
		feed(up.V, up.U)
	}
	passes++
	for v := 0; v < n; v++ {
		if member[v] == -1 {
			continue
		}
		collectBuf = groupSamp[v].CollectInto(collectBuf[:0])
		for _, item := range collectBuf {
			w := int(item)
			g := member[w]
			if g == -1 || g == member[v] || addedStamp[g] == stamp {
				continue
			}
			addedStamp[g] = stamp
			sp.AddEdge(v, w, 1)
		}
		stamp++
	}
	return SpannerResult{Spanner: sp, Passes: passes}
}

// RecurseConnect is the retained map-based RECURSECONNECT: per-pass
// map[int]*GroupSampler, nested witness maps, scalar stream replays.
func RecurseConnect(st *stream.Stream, k int, seed uint64) SpannerResult {
	n := st.N
	if k < 2 {
		k = 2
	}
	sp := graph.New(n)
	sn := make([]int, n)
	for v := range sn {
		sn[v] = v
	}
	numSuper := n
	passes := 0

	maxPasses := int(math.Ceil(math.Log2(float64(k))))
	for i := 0; i < maxPasses && numSuper > 1; i++ {
		di := int(math.Ceil(math.Pow(float64(n), math.Pow(2, float64(i))/float64(k))))
		if di < 2 {
			di = 2
		}
		live := liveSupernodes(sn, n)
		if len(live) <= 1 {
			break
		}
		samp := make(map[int]*spanner.GroupSampler, len(live))
		passSeed := hashing.DeriveSeed(seed, 0x2c00+uint64(i))
		for _, p := range live {
			samp[p] = spanner.NewGroupSampler(uint64(n)*uint64(n), di, hashing.DeriveSeed(passSeed, uint64(p)))
		}
		for _, up := range st.Updates {
			if up.U == up.V {
				continue
			}
			pu, pv := sn[up.U], sn[up.V]
			if pu == -1 || pv == -1 || pu == pv {
				continue
			}
			idx := stream.EdgeIndex(up.U, up.V, n)
			samp[pu].Update(uint64(pv), idx, up.Delta)
			samp[pv].Update(uint64(pu), idx, up.Delta)
		}
		passes++

		type witness struct{ u, v int }
		hAdj := make(map[int]map[int]witness, len(live))
		for _, p := range live {
			hAdj[p] = map[int]witness{}
		}
		for _, p := range live {
			for _, item := range samp[p].Collect() {
				u, v := stream.EdgeFromIndex(item, n)
				pu, pv := sn[u], sn[v]
				if pu == -1 || pv == -1 || pu == pv {
					continue
				}
				hAdj[pu][pv] = witness{u, v}
				hAdj[pv][pu] = witness{u, v}
			}
		}
		for p, nbrs := range hAdj {
			for q, w := range nbrs {
				if p < q {
					sp.AddEdge(w.u, w.v, 1)
				}
			}
		}

		high := make([]int, 0, len(live))
		for _, p := range live {
			if len(hAdj[p]) >= di {
				high = append(high, p)
			}
		}
		sort.Ints(high) // deterministic
		centers := map[int]bool{}
		assigned := map[int]int{} // supernode -> center
		var centerOrder []int     // creation order == ascending id
		for _, q := range high {
			if _, done := assigned[q]; done {
				continue
			}
			centers[q] = true
			centerOrder = append(centerOrder, q)
			assigned[q] = q
			for nb := range hAdj[q] {
				if _, done := assigned[nb]; !done {
					assigned[nb] = q
				}
			}
			for nb := range hAdj[q] {
				for nb2 := range hAdj[nb] {
					if _, done := assigned[nb2]; !done && len(hAdj[nb2]) >= di {
						assigned[nb2] = q
					}
				}
			}
		}

		// Collapse, relabeling centers in creation (ascending id) order.
		newID := map[int]int{}
		for _, c := range centerOrder {
			newID[c] = len(newID)
		}
		next := make([]int, n)
		for v := 0; v < n; v++ {
			p := sn[v]
			if p == -1 {
				next[v] = -1
				continue
			}
			if c, ok := assigned[p]; ok {
				next[v] = newID[c]
				continue
			}
			next[v] = -1
		}
		sn = next
		numSuper = len(newID)
	}

	live := liveSupernodes(sn, n)
	if len(live) > 1 {
		passSeed := hashing.DeriveSeed(seed, 0x2cff)
		samp := make(map[int]*spanner.GroupSampler, len(live))
		for _, p := range live {
			samp[p] = spanner.NewGroupSampler(uint64(n)*uint64(n), len(live), hashing.DeriveSeed(passSeed, uint64(p)))
		}
		for _, up := range st.Updates {
			if up.U == up.V {
				continue
			}
			pu, pv := sn[up.U], sn[up.V]
			if pu == -1 || pv == -1 || pu == pv {
				continue
			}
			idx := stream.EdgeIndex(up.U, up.V, n)
			samp[pu].Update(uint64(pv), idx, up.Delta)
			samp[pv].Update(uint64(pu), idx, up.Delta)
		}
		passes++
		for _, p := range live {
			for _, item := range samp[p].Collect() {
				u, v := stream.EdgeFromIndex(item, n)
				sp.AddEdge(u, v, 1)
			}
		}
	}
	return SpannerResult{Spanner: sp, Passes: passes}
}

// liveSupernodes is the retained map-deduped live-id scan.
func liveSupernodes(sn []int, n int) []int {
	seen := map[int]bool{}
	var out []int
	for v := 0; v < n; v++ {
		if sn[v] != -1 && !seen[sn[v]] {
			seen[sn[v]] = true
			out = append(out, sn[v])
		}
	}
	sort.Ints(out)
	return out
}
