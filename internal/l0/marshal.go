package l0

import (
	"encoding/binary"
	"errors"
	"fmt"

	"graphsketch/internal/wire"
)

// Wire formats: magic "L0S1" is the legacy fixed-size encoding — universe,
// seed, reps, levels (u64 LE each), then reps*levels 32-byte cells. Magic
// "L0S2" keeps the header but carries a format-tagged cell payload (the
// shared internal/wire codec): dense 24-byte (w, s, f) records or the
// compact run-length form whose size is proportional to the non-zero
// state. Hashes and fingerprint bases are reconstructed from the seed in
// both, so the encoding carries only state.

var (
	l0Magic  = [4]byte{'L', '0', 'S', '1'}
	l0Magic2 = [4]byte{'L', '0', 'S', '2'}
)

// ErrBadEncoding is returned for corrupt or incompatible encodings.
var ErrBadEncoding = errors.New("l0: bad encoding")

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *Sampler) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 4+4*8+s.reps*s.levels*32)
	buf = append(buf, l0Magic[:]...)
	var hdr [32]byte
	binary.LittleEndian.PutUint64(hdr[0:], s.universe)
	binary.LittleEndian.PutUint64(hdr[8:], s.seed)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(s.reps))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(s.levels))
	buf = append(buf, hdr[:]...)
	for r := 0; r < s.reps; r++ {
		for j := 0; j < s.levels; j++ {
			buf = s.cells[r][j].AppendBinary(buf)
		}
	}
	return buf, nil
}

// MarshalBinaryCompact emits the L0S2 envelope with the compact cell
// payload: bytes proportional to the sampler's non-zero state — the format
// a site ships when its share of the stream left the sampler sparse.
func (s *Sampler) MarshalBinaryCompact() ([]byte, error) {
	buf := make([]byte, 0, 4+4*8+64)
	buf = append(buf, l0Magic2[:]...)
	var hdr [32]byte
	binary.LittleEndian.PutUint64(hdr[0:], s.universe)
	binary.LittleEndian.PutUint64(hdr[8:], s.seed)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(s.reps))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(s.levels))
	buf = append(buf, hdr[:]...)
	buf = append(buf, wire.FormatCompact)
	return wire.AppendRuns(buf, s.reps*s.levels, func(i int) (int64, int64, uint64) {
		return s.cells[i/s.levels][i%s.levels].State()
	}), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, reconstructing a
// sampler equivalent to the encoded one (including mergeability). Both the
// legacy L0S1 and the tagged L0S2 envelopes decode.
func (s *Sampler) UnmarshalBinary(data []byte) error {
	if len(data) >= 36 && [4]byte(data[0:4]) == l0Magic2 {
		return s.unmarshalTagged(data)
	}
	if len(data) < 36 || [4]byte(data[0:4]) != l0Magic {
		return ErrBadEncoding
	}
	universe := binary.LittleEndian.Uint64(data[4:])
	seed := binary.LittleEndian.Uint64(data[12:])
	reps := int(binary.LittleEndian.Uint64(data[20:]))
	levels := int(binary.LittleEndian.Uint64(data[28:]))
	if reps < 1 || reps > 1<<10 || levels < 1 || levels > 1<<10 {
		return fmt.Errorf("%w: implausible shape reps=%d levels=%d", ErrBadEncoding, reps, levels)
	}
	fresh := NewWithReps(universe, seed, reps)
	if fresh.levels != levels {
		return fmt.Errorf("%w: levels %d inconsistent with universe %d", ErrBadEncoding, levels, universe)
	}
	rest := data[36:]
	var err error
	for r := 0; r < reps; r++ {
		for j := 0; j < levels; j++ {
			if rest, err = fresh.cells[r][j].DecodeBinary(rest); err != nil {
				return err
			}
		}
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadEncoding, len(rest))
	}
	*s = *fresh
	return nil
}

// unmarshalTagged decodes the L0S2 envelope (header as L0S1, then one
// format-tagged cell payload).
func (s *Sampler) unmarshalTagged(data []byte) error {
	universe := binary.LittleEndian.Uint64(data[4:])
	seed := binary.LittleEndian.Uint64(data[12:])
	reps := int(binary.LittleEndian.Uint64(data[20:]))
	levels := int(binary.LittleEndian.Uint64(data[28:]))
	if reps < 1 || reps > 1<<10 || levels < 1 || levels > 1<<10 {
		return fmt.Errorf("%w: implausible shape reps=%d levels=%d", ErrBadEncoding, reps, levels)
	}
	fresh := NewWithReps(universe, seed, reps)
	if fresh.levels != levels {
		return fmt.Errorf("%w: levels %d inconsistent with universe %d", ErrBadEncoding, levels, universe)
	}
	rest := data[36:]
	if len(rest) < 1 {
		return ErrBadEncoding
	}
	format := rest[0]
	rest = rest[1:]
	n := reps * levels
	switch format {
	case wire.FormatDense:
		var err error
		rest, err = wire.DecodeDenseCells(rest, n, func(i int, w, sv int64, f uint64) {
			fresh.cells[i/levels][i%levels].SetState(w, sv, f)
		})
		if err != nil {
			return fmt.Errorf("%w: %v", ErrBadEncoding, err)
		}
	case wire.FormatCompact:
		var err error
		rest, err = wire.DecodeRuns(rest, n, func(i int, w, sv int64, f uint64) {
			fresh.cells[i/levels][i%levels].SetState(w, sv, f)
		})
		if err != nil {
			return fmt.Errorf("%w: %v", ErrBadEncoding, err)
		}
	default:
		return fmt.Errorf("%w: unknown format tag %d", ErrBadEncoding, format)
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadEncoding, len(rest))
	}
	*s = *fresh
	return nil
}
