package l0

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire format: magic "L0S1", universe, seed, reps, levels (u64 LE each),
// then reps*levels fixed-size cells. The level hashes are reconstructed
// from the seed, so the encoding carries only state, not configuration
// redundancy beyond what integrity checking needs.

var l0Magic = [4]byte{'L', '0', 'S', '1'}

// ErrBadEncoding is returned for corrupt or incompatible encodings.
var ErrBadEncoding = errors.New("l0: bad encoding")

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *Sampler) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 4+4*8+s.reps*s.levels*32)
	buf = append(buf, l0Magic[:]...)
	var hdr [32]byte
	binary.LittleEndian.PutUint64(hdr[0:], s.universe)
	binary.LittleEndian.PutUint64(hdr[8:], s.seed)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(s.reps))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(s.levels))
	buf = append(buf, hdr[:]...)
	for r := 0; r < s.reps; r++ {
		for j := 0; j < s.levels; j++ {
			buf = s.cells[r][j].AppendBinary(buf)
		}
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, reconstructing a
// sampler equivalent to the encoded one (including mergeability).
func (s *Sampler) UnmarshalBinary(data []byte) error {
	if len(data) < 36 || [4]byte(data[0:4]) != l0Magic {
		return ErrBadEncoding
	}
	universe := binary.LittleEndian.Uint64(data[4:])
	seed := binary.LittleEndian.Uint64(data[12:])
	reps := int(binary.LittleEndian.Uint64(data[20:]))
	levels := int(binary.LittleEndian.Uint64(data[28:]))
	if reps < 1 || reps > 1<<10 || levels < 1 || levels > 1<<10 {
		return fmt.Errorf("%w: implausible shape reps=%d levels=%d", ErrBadEncoding, reps, levels)
	}
	fresh := NewWithReps(universe, seed, reps)
	if fresh.levels != levels {
		return fmt.Errorf("%w: levels %d inconsistent with universe %d", ErrBadEncoding, levels, universe)
	}
	rest := data[36:]
	var err error
	for r := 0; r < reps; r++ {
		for j := 0; j < levels; j++ {
			if rest, err = fresh.cells[r][j].DecodeBinary(rest); err != nil {
				return err
			}
		}
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadEncoding, len(rest))
	}
	*s = *fresh
	return nil
}
