package l0

import (
	"testing"

	"graphsketch/internal/hashing"
)

func TestEmptySamplerFails(t *testing.T) {
	s := New(1000, 1)
	if _, _, ok := s.Sample(); ok {
		t.Fatal("empty sampler must not produce a sample")
	}
	if !s.IsZero() {
		t.Fatal("empty sampler should be zero")
	}
}

func TestSingletonAlwaysRecovered(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		s := New(1<<20, seed)
		s.Update(12345, 3)
		idx, w, ok := s.Sample()
		if !ok || idx != 12345 || w != 3 {
			t.Fatalf("seed %d: got (%d,%d,%v)", seed, idx, w, ok)
		}
	}
}

func TestSampleFromSupport(t *testing.T) {
	support := map[uint64]int64{}
	s := New(1<<24, 7)
	r := hashing.NewRNG(3)
	for len(support) < 500 {
		idx := uint64(r.Intn(1 << 24))
		if _, dup := support[idx]; dup {
			continue
		}
		w := int64(r.Intn(10) + 1)
		support[idx] = w
		s.Update(idx, w)
	}
	idx, w, ok := s.Sample()
	if !ok {
		t.Fatal("sample failed on 500-element support")
	}
	if want, in := support[idx]; !in || want != w {
		t.Fatalf("sampled (%d,%d) not in support", idx, w)
	}
}

func TestSuccessRate(t *testing.T) {
	// FAIL probability must be small across seeds and support sizes.
	for _, supportSize := range []int{1, 2, 5, 50, 1000} {
		failures := 0
		const trials = 100
		for seed := uint64(0); seed < trials; seed++ {
			s := New(1<<24, hashing.DeriveSeed(uint64(supportSize), seed))
			r := hashing.NewRNG(seed * 7)
			seen := map[uint64]bool{}
			for len(seen) < supportSize {
				idx := uint64(r.Intn(1 << 24))
				if seen[idx] {
					continue
				}
				seen[idx] = true
				s.Update(idx, 1)
			}
			if _, _, ok := s.Sample(); !ok {
				failures++
			}
		}
		if failures > 2 {
			t.Errorf("support=%d: %d/%d FAILs", supportSize, failures, trials)
		}
	}
}

func TestUniformity(t *testing.T) {
	// Draw one sample per seed over a fixed 32-element support and check
	// the histogram is flat-ish. Theorem 2.1 promises uniform over support;
	// the single-cell-per-level design is near-uniform, so the tolerance is
	// statistical, not exact.
	const supportSize = 32
	const trials = 6400
	counts := map[uint64]int{}
	for seed := uint64(0); seed < trials; seed++ {
		s := New(1<<20, seed)
		for i := uint64(0); i < supportSize; i++ {
			s.Update(i*1009+11, 1)
		}
		if idx, _, ok := s.Sample(); ok {
			counts[idx]++
		}
	}
	want := float64(trials) / supportSize
	chi2 := 0.0
	for i := uint64(0); i < supportSize; i++ {
		got := float64(counts[i*1009+11])
		chi2 += (got - want) * (got - want) / want
	}
	// chi-square with 31 dof: mean 31, sd ~7.9. Allow a wide margin
	// (slight non-uniformity of min-level selection is expected).
	if chi2 > 150 {
		t.Fatalf("uniformity chi2 = %.1f too large (counts %v)", chi2, counts)
	}
}

func TestDeletionsCancel(t *testing.T) {
	s := New(1<<16, 5)
	for i := uint64(0); i < 100; i++ {
		s.Update(i, 1)
	}
	for i := uint64(0); i < 100; i++ {
		if i != 42 {
			s.Update(i, -1)
		}
	}
	idx, w, ok := s.Sample()
	if !ok || idx != 42 || w != 1 {
		t.Fatalf("got (%d,%d,%v), want (42,1,true)", idx, w, ok)
	}
}

func TestFullCancellationIsZero(t *testing.T) {
	s := New(1<<16, 6)
	for i := uint64(0); i < 64; i++ {
		s.Update(i*3, 2)
	}
	for i := uint64(0); i < 64; i++ {
		s.Update(i*3, -2)
	}
	if !s.IsZero() {
		t.Fatal("fully canceled sketch should be zero")
	}
	if _, _, ok := s.Sample(); ok {
		t.Fatal("zero sketch must not sample")
	}
}

func TestSignedWeightsCancelOnMerge(t *testing.T) {
	// The AGM pattern: x^u has +1 for (u,v) with u the lower endpoint and
	// -1 when u is the higher endpoint; summing across a component cancels
	// internal edges. Simulate with two samplers sharing a seed.
	a := New(1<<16, 9)
	b := New(1<<16, 9)
	// Internal edge index 500: +1 in a, -1 in b.
	a.Update(500, 1)
	b.Update(500, -1)
	// Boundary edge 900 only in a.
	a.Update(900, 1)
	a.Add(b)
	idx, w, ok := a.Sample()
	if !ok || idx != 900 || w != 1 {
		t.Fatalf("got (%d,%d,%v), want (900,1,true)", idx, w, ok)
	}
}

func TestSubInverseOfAdd(t *testing.T) {
	a := New(1<<16, 11)
	b := New(1<<16, 11)
	for i := uint64(0); i < 30; i++ {
		a.Update(i*7, int64(i+1))
		b.Update(i*13, int64(i+2))
	}
	sum := a.Clone()
	sum.Add(b)
	sum.Sub(b)
	sum.Sub(a)
	if !sum.IsZero() {
		t.Fatal("a + b - b - a should be zero")
	}
}

func TestMergeEqualsWholeStream(t *testing.T) {
	whole := New(1<<20, 13)
	parts := make([]*Sampler, 4)
	for p := range parts {
		parts[p] = New(1<<20, 13)
	}
	r := hashing.NewRNG(17)
	for i := 0; i < 1000; i++ {
		idx := uint64(r.Intn(1 << 20))
		d := int64(r.Intn(5) - 2)
		whole.Update(idx, d)
		parts[i%4].Update(idx, d)
	}
	merged := parts[0].Clone()
	for p := 1; p < 4; p++ {
		merged.Add(parts[p])
	}
	merged.Sub(whole)
	if !merged.IsZero() {
		t.Fatal("merged per-site sketches differ from whole-stream sketch")
	}
}

func TestIncompatibleMergePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a := New(100, 1)
	b := New(200, 1)
	a.Add(b)
}

func TestTotalWeight(t *testing.T) {
	s := New(1<<10, 21)
	s.Update(3, 5)
	s.Update(9, -2)
	if got := s.TotalWeight(); got != 3 {
		t.Fatalf("TotalWeight = %d, want 3", got)
	}
}

func TestWordsGrowsLogarithmically(t *testing.T) {
	small := New(1<<10, 1).Words()
	big := New(1<<40, 1).Words()
	if big <= small {
		t.Fatal("more levels must cost more words")
	}
	if big > small*8 {
		t.Fatalf("space should be O(log U): %d vs %d", small, big)
	}
}

func BenchmarkUpdate(b *testing.B) {
	s := New(1<<40, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Update(uint64(i), 1)
	}
}

func BenchmarkSampleSupport1000(b *testing.B) {
	s := New(1<<30, 1)
	for i := uint64(0); i < 1000; i++ {
		s.Update(i*997, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample()
	}
}

func BenchmarkMerge(b *testing.B) {
	x := New(1<<30, 1)
	y := New(1<<30, 1)
	for i := uint64(0); i < 100; i++ {
		x.Update(i, 1)
		y.Update(i+1000, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := x.Clone()
		c.Add(y)
	}
}
