// Package l0 implements l0-sampling (Theorem 2.1, after Jowhari, Saglam,
// and Tardos [31]): a linear sketch of a vector x in Z^U from which one can
// draw a (near-)uniform element of support(x) = {i : x_i != 0}, or FAIL
// with small probability.
//
// Construction: R independent repetitions. Each repetition assigns every
// index i a geometric level L(i) (P[L(i) >= j] = 2^-j, fixed by a seeded
// hash so inserts and deletes of the same index always agree) and keeps one
// 1-sparse recovery cell per level j summarizing {i in support : L(i) >= j}.
// At the level where roughly one support element survives, the cell decodes
// and yields the sample. Scanning levels from most-subsampled downward and
// returning the first decode is correct because level sets are nested: if a
// level holds >= 2 support elements, so do all lower levels.
//
// The sketch is linear (Add/Sub merge streams), which is the property every
// algorithm in the paper leans on: summing the node-incidence sketches of a
// vertex set A yields a sketch of exactly the edges crossing (A, V \ A)
// (Sec. 3.3), and deletions cancel insertions (Sec. 1.1).
package l0

import (
	"graphsketch/internal/hashing"
	"graphsketch/internal/onesparse"
)

// DefaultReps is the default number of independent repetitions. Each
// repetition succeeds with constant probability; failures across
// repetitions are independent, so the FAIL rate decays as c^R.
const DefaultReps = 8

// Sampler is an l0-sampling sketch over the universe [0, U). Samplers are
// mergeable iff built with identical (universe, reps, seed).
type Sampler struct {
	universe uint64
	levels   int
	reps     int
	seed     uint64
	mix      []hashing.Mixer    // per-rep level hash
	tab      *hashing.PowTable  // z^index table for the shared fingerprint base
	cells    [][]onesparse.Cell // reps x levels
}

// New creates a sampler for indices in [0, universe) with DefaultReps
// repetitions.
func New(universe uint64, seed uint64) *Sampler {
	return NewWithReps(universe, seed, DefaultReps)
}

// NewWithReps creates a sampler with an explicit repetition count
// (more repetitions = lower FAIL probability, linearly more space).
func NewWithReps(universe uint64, seed uint64, reps int) *Sampler {
	if reps < 1 {
		reps = 1
	}
	levels := hashing.SamplerLevels(universe)
	s := &Sampler{universe: universe, levels: levels, reps: reps, seed: seed}
	s.mix = make([]hashing.Mixer, reps)
	s.cells = make([][]onesparse.Cell, reps)
	cellSeed := hashing.SamplerCellSeed(seed)
	maxExp := universe
	if maxExp > 0 {
		maxExp--
	}
	s.tab = hashing.NewPowTableMax(onesparse.FingerprintBase(cellSeed), maxExp)
	for r := 0; r < reps; r++ {
		s.mix[r] = hashing.NewMixer(hashing.SamplerMixerSeed(seed, r))
		row := make([]onesparse.Cell, levels)
		for j := range row {
			row[j] = onesparse.NewCell(cellSeed)
		}
		s.cells[r] = row
	}
	return s
}

// Universe returns the universe size the sampler was built for.
func (s *Sampler) Universe() uint64 { return s.universe }

// Update adds delta to coordinate index. Cost: expected O(1) cell updates
// per repetition (the level distribution is geometric); the fingerprint
// term is one table lookup shared by every touched cell.
func (s *Sampler) Update(index uint64, delta int64) {
	if delta == 0 {
		return
	}
	term := onesparse.FingerprintTermTab(s.tab, index, delta)
	for r := 0; r < s.reps; r++ {
		l := s.mix[r].Level(index)
		if l >= s.levels {
			l = s.levels - 1
		}
		row := s.cells[r]
		for j := 0; j <= l; j++ {
			row[j].UpdateTerm(index, delta, term)
		}
	}
}

// Add merges other into s (vector addition). Shapes and seeds must match.
func (s *Sampler) Add(other *Sampler) {
	s.mustMatch(other)
	for r := 0; r < s.reps; r++ {
		for j := 0; j < s.levels; j++ {
			s.cells[r][j].Add(&other.cells[r][j])
		}
	}
}

// Sub subtracts other from s (vector subtraction).
func (s *Sampler) Sub(other *Sampler) {
	s.mustMatch(other)
	for r := 0; r < s.reps; r++ {
		for j := 0; j < s.levels; j++ {
			s.cells[r][j].Sub(&other.cells[r][j])
		}
	}
}

func (s *Sampler) mustMatch(other *Sampler) {
	switch {
	case s.universe != other.universe:
		panic("l0: incompatible merge: universe mismatch")
	case s.reps != other.reps:
		panic("l0: incompatible merge: reps mismatch")
	case s.levels != other.levels:
		panic("l0: incompatible merge: levels mismatch")
	case s.seed != other.seed:
		panic("l0: incompatible merge: seed mismatch")
	}
}

// Clone returns a deep copy.
func (s *Sampler) Clone() *Sampler {
	c := &Sampler{universe: s.universe, levels: s.levels, reps: s.reps, seed: s.seed, mix: s.mix, tab: s.tab}
	c.cells = make([][]onesparse.Cell, s.reps)
	for r := range s.cells {
		row := make([]onesparse.Cell, s.levels)
		copy(row, s.cells[r])
		c.cells[r] = row
	}
	return c
}

// Sample returns (index, weight, true) for an element drawn near-uniformly
// from the support of the summarized vector, or ok=false if the sketch is
// empty or every repetition fails.
func (s *Sampler) Sample() (index uint64, weight int64, ok bool) {
	for r := 0; r < s.reps; r++ {
		row := s.cells[r]
		// Scan from the most subsampled level down; nested level sets make
		// the first non-empty level the decisive one for this repetition.
		for j := s.levels - 1; j >= 0; j-- {
			if row[j].IsZero() {
				continue
			}
			if idx, w, decOK := row[j].DecodeTab(s.tab); decOK {
				return idx, w, true
			}
			break // >=2 survivors here, so >=2 at every lower level too
		}
	}
	return 0, 0, false
}

// IsZero reports whether the summarized vector is (w.h.p.) the zero vector.
// Level 0 of every repetition summarizes the whole vector, so this is a
// fingerprint test with R independent witnesses.
func (s *Sampler) IsZero() bool {
	for r := 0; r < s.reps; r++ {
		if !s.cells[r][0].IsZero() {
			return false
		}
	}
	return true
}

// TotalWeight returns sum_i x_i (exact, from the level-0 aggregate).
func (s *Sampler) TotalWeight() int64 {
	return s.cells[0][0].Weight()
}

// Words returns the memory footprint in 64-bit words.
func (s *Sampler) Words() int {
	return s.reps * s.levels * 4
}
