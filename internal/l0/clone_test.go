package l0

import "testing"

// TestCloneIndependence: mutating a clone must never perturb the original,
// and vice versa — the contract Boruvka-era aggregation relied on and the
// arena refactor's parity tests assume.
func TestCloneIndependence(t *testing.T) {
	orig := NewWithReps(1<<16, 5, 4)
	for i := uint64(0); i < 50; i++ {
		orig.Update(i*13, 1)
	}
	snapshot := NewWithReps(1<<16, 5, 4)
	for i := uint64(0); i < 50; i++ {
		snapshot.Update(i*13, 1)
	}
	c := orig.Clone()
	c.Update(999, 7)
	c.Update(13, -1)
	// The original must still behave exactly like the untouched snapshot.
	oi, ow, ook := orig.Sample()
	si, sw, sok := snapshot.Sample()
	if oi != si || ow != sw || ook != sok {
		t.Fatal("mutating a clone perturbed the original's sample")
	}
	if orig.TotalWeight() != snapshot.TotalWeight() {
		t.Fatal("mutating a clone perturbed the original's weight aggregate")
	}
	// And mutating the original must not leak into the clone.
	before := c.TotalWeight()
	orig.Update(42, 3)
	if c.TotalWeight() != before {
		t.Fatal("mutating the original perturbed the clone")
	}
}
