package l0

import "testing"

func TestMarshalRoundTrip(t *testing.T) {
	s := New(1<<20, 5)
	for i := uint64(0); i < 40; i++ {
		s.Update(i*31, int64(i%5)+1)
	}
	enc, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Sampler
	if err := back.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	// Equivalence check: subtracting the original leaves zero.
	back.Sub(s)
	if !back.IsZero() {
		t.Fatal("decoded sampler differs from original")
	}
}

func TestDecodedSamplerStillMergeable(t *testing.T) {
	a := New(1<<16, 9)
	b := New(1<<16, 9)
	a.Update(100, 1)
	b.Update(200, 1)
	enc, _ := a.MarshalBinary()
	var shipped Sampler
	if err := shipped.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	shipped.Add(b)
	found := map[uint64]bool{}
	// The merged sketch holds {100, 200}; one sample must be one of them.
	idx, _, ok := shipped.Sample()
	if !ok {
		t.Fatal("sample failed")
	}
	found[idx] = true
	if !found[100] && !found[200] {
		t.Fatalf("sampled %d not in merged support", idx)
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	s := New(1<<10, 1)
	s.Update(5, 1)
	enc, _ := s.MarshalBinary()
	var back Sampler
	if err := back.UnmarshalBinary(enc[:10]); err == nil {
		t.Fatal("short buffer accepted")
	}
	bad := append([]byte{}, enc...)
	bad[0] ^= 0xff // break magic
	if err := back.UnmarshalBinary(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	if err := back.UnmarshalBinary(append(enc, 1, 2, 3)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}
