package l0

import "testing"

func TestMarshalRoundTrip(t *testing.T) {
	s := New(1<<20, 5)
	for i := uint64(0); i < 40; i++ {
		s.Update(i*31, int64(i%5)+1)
	}
	enc, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Sampler
	if err := back.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	// Equivalence check: subtracting the original leaves zero.
	back.Sub(s)
	if !back.IsZero() {
		t.Fatal("decoded sampler differs from original")
	}
}

func TestDecodedSamplerStillMergeable(t *testing.T) {
	a := New(1<<16, 9)
	b := New(1<<16, 9)
	a.Update(100, 1)
	b.Update(200, 1)
	enc, _ := a.MarshalBinary()
	var shipped Sampler
	if err := shipped.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	shipped.Add(b)
	found := map[uint64]bool{}
	// The merged sketch holds {100, 200}; one sample must be one of them.
	idx, _, ok := shipped.Sample()
	if !ok {
		t.Fatal("sample failed")
	}
	found[idx] = true
	if !found[100] && !found[200] {
		t.Fatalf("sampled %d not in merged support", idx)
	}
}

func TestCompactMarshalRoundTrip(t *testing.T) {
	s := New(1<<20, 5)
	for i := uint64(0); i < 40; i++ {
		s.Update(i*31, int64(i%5)+1)
	}
	dense, _ := s.MarshalBinary()
	compact, err := s.MarshalBinaryCompact()
	if err != nil {
		t.Fatal(err)
	}
	if len(compact) >= len(dense) {
		t.Fatalf("compact (%d bytes) not smaller than dense (%d) on a sparse sampler", len(compact), len(dense))
	}
	var back Sampler
	if err := back.UnmarshalBinary(compact); err != nil {
		t.Fatalf("compact unmarshal: %v", err)
	}
	back.Sub(s)
	if !back.IsZero() {
		t.Fatal("compact-decoded sampler differs from original")
	}

	// Empty sampler: the all-zero-run edge case.
	empty := New(1<<12, 3)
	enc, _ := empty.MarshalBinaryCompact()
	var emptyBack Sampler
	if err := emptyBack.UnmarshalBinary(enc); err != nil {
		t.Fatalf("empty compact unmarshal: %v", err)
	}
	if !emptyBack.IsZero() {
		t.Fatal("empty round-trip not zero")
	}

	// Corruption: truncated payload and trailing bytes must be rejected.
	if err := back.UnmarshalBinary(compact[:len(compact)-3]); err == nil {
		t.Fatal("truncated compact payload accepted")
	}
	if err := back.UnmarshalBinary(append(append([]byte{}, compact...), 9)); err == nil {
		t.Fatal("trailing compact bytes accepted")
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	s := New(1<<10, 1)
	s.Update(5, 1)
	enc, _ := s.MarshalBinary()
	var back Sampler
	if err := back.UnmarshalBinary(enc[:10]); err == nil {
		t.Fatal("short buffer accepted")
	}
	bad := append([]byte{}, enc...)
	bad[0] ^= 0xff // break magic
	if err := back.UnmarshalBinary(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	if err := back.UnmarshalBinary(append(enc, 1, 2, 3)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}
