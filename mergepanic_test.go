package graphsketch

import (
	"encoding/binary"
	"errors"
	"testing"

	"graphsketch/internal/agm"
	"graphsketch/internal/l0"
	"graphsketch/internal/sketchcore"
	"graphsketch/internal/sparserec"
)

// TestIncompatibleMergePanicMessages pins the shared convention for
// incompatible-merge panics across the three cell-bank layers: the message
// is "<pkg>: incompatible merge: <dimension> mismatch", naming the first
// mismatching dimension, so an operator mixing sketches from misconfigured
// sites sees WHICH parameter diverged rather than a generic complaint.
func TestIncompatibleMergePanicMessages(t *testing.T) {
	mustPanic := func(t *testing.T, want string, f func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("expected panic %q, got none", want)
			}
			if got, ok := r.(string); !ok || got != want {
				t.Fatalf("panic = %v, want %q", r, want)
			}
		}()
		f()
	}

	cases := []struct {
		name string
		want string
		run  func()
	}{
		{
			"l0 universe", "l0: incompatible merge: universe mismatch",
			func() { l0.New(1<<10, 1).Add(l0.New(1<<12, 1)) },
		},
		{
			"l0 reps", "l0: incompatible merge: reps mismatch",
			func() { l0.NewWithReps(1<<10, 1, 4).Add(l0.NewWithReps(1<<10, 1, 5)) },
		},
		{
			"l0 seed", "l0: incompatible merge: seed mismatch",
			func() { l0.New(1<<10, 1).Add(l0.New(1<<10, 2)) },
		},
		{
			"sparserec k", "sparserec: incompatible merge: k mismatch",
			func() { sparserec.New(4, 1).Add(sparserec.New(8, 1)) },
		},
		{
			"sparserec seed", "sparserec: incompatible merge: seed mismatch",
			func() { sparserec.New(4, 1).Add(sparserec.New(4, 2)) },
		},
		{
			"sparserec bank n", "sparserec: incompatible merge: n mismatch",
			func() { sparserec.NewBank(4, 2, 1).Add(sparserec.NewBank(5, 2, 1)) },
		},
		{
			"sparserec bank seed", "sparserec: incompatible merge: seed mismatch",
			func() { sparserec.NewBank(4, 2, 1).Add(sparserec.NewBank(4, 2, 9)) },
		},
		{
			"sketchcore slots", "sketchcore: incompatible merge: slots mismatch",
			func() {
				a := sketchcore.New(sketchcore.Config{Slots: 4, Universe: 16, Reps: 2, Seed: 1})
				a.Add(sketchcore.New(sketchcore.Config{Slots: 5, Universe: 16, Reps: 2, Seed: 1}))
			},
		},
		{
			"sketchcore reps", "sketchcore: incompatible merge: reps mismatch",
			func() {
				a := sketchcore.New(sketchcore.Config{Slots: 4, Universe: 16, Reps: 2, Seed: 1})
				a.Add(sketchcore.New(sketchcore.Config{Slots: 4, Universe: 16, Reps: 3, Seed: 1}))
			},
		},
		{
			"sketchcore universe", "sketchcore: incompatible merge: universe mismatch",
			func() {
				a := sketchcore.New(sketchcore.Config{Slots: 4, Universe: 16, Reps: 2, Seed: 1})
				a.Add(sketchcore.New(sketchcore.Config{Slots: 4, Universe: 17, Reps: 2, Seed: 1}))
			},
		},
		{
			"sketchcore seed", "sketchcore: incompatible merge: seed mismatch",
			func() {
				a := sketchcore.New(sketchcore.Config{Slots: 4, Universe: 16, Reps: 2, Seed: 1})
				a.Add(sketchcore.New(sketchcore.Config{Slots: 4, Universe: 16, Reps: 2, Seed: 2}))
			},
		},
		{
			"sketchcore mode", "sketchcore: incompatible merge: seeding mode mismatch",
			func() {
				a := sketchcore.New(sketchcore.Config{Slots: 2, Universe: 16, Reps: 2, Seed: 1})
				a.Add(sketchcore.New(sketchcore.Config{Slots: 2, Universe: 16, Reps: 2, SlotSeeds: []uint64{1, 2}}))
			},
		},
		{
			"sketchcore slot seeds", "sketchcore: incompatible merge: slot seeds mismatch",
			func() {
				a := sketchcore.New(sketchcore.Config{Slots: 2, Universe: 16, Reps: 2, SlotSeeds: []uint64{1, 2}})
				a.Add(sketchcore.New(sketchcore.Config{Slots: 2, Universe: 16, Reps: 2, SlotSeeds: []uint64{1, 3}}))
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { mustPanic(t, tc.want, tc.run) })
	}
}

// TestWireErrorSurface pins the other side of the convention: everything
// reachable through wire bytes — truncation, corruption, parameter
// mismatch, unknown format tags, absurd header dimensions — is an ERROR
// satisfying errors.Is(err, ErrBadEncoding), never a panic. Panics are
// reserved for in-process programmer errors (the table above); bytes are
// input.
func TestWireErrorSurface(t *testing.T) {
	sk := NewConnectivitySketch(32, 7)
	sk.Update(1, 2, 1)
	sk.Update(3, 4, 1)
	payload, err := sk.MarshalBinaryCompact()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}

	mustBad := func(t *testing.T, err error) {
		t.Helper()
		if err == nil {
			t.Fatal("want error, got nil")
		}
		if !errors.Is(err, ErrBadEncoding) {
			t.Fatalf("error %v does not wrap ErrBadEncoding", err)
		}
	}

	t.Run("unmarshal truncated", func(t *testing.T) {
		for _, n := range []int{0, 3, 27, 28, len(payload) / 2, len(payload) - 1} {
			var got ConnectivitySketch
			mustBad(t, got.UnmarshalBinary(payload[:n]))
		}
	})
	t.Run("unmarshal bit flips", func(t *testing.T) {
		// Flip one bit in each region: magic, header fields, body.
		for _, pos := range []int{0, 5, 21, 30, len(payload) - 1} {
			mut := append([]byte(nil), payload...)
			mut[pos] ^= 0x10
			var got ConnectivitySketch
			if err := got.UnmarshalBinary(mut); err != nil {
				mustBad(t, err)
			}
			// Some body flips decode (the compact codec has no whole-payload
			// checksum — transport integrity is the envelope layer's job);
			// what is pinned here is that nothing panics.
		}
	})
	t.Run("merge parameter mismatch", func(t *testing.T) {
		other := NewConnectivitySketch(64, 7) // wrong n
		mustBad(t, other.MergeBytes(payload))
		reseeded := NewConnectivitySketch(32, 8) // wrong seed
		mustBad(t, reseeded.MergeBytes(payload))
	})
	t.Run("merge uninitialized", func(t *testing.T) {
		var zero ConnectivitySketch
		if err := zero.MergeBytes(payload); err == nil {
			t.Fatal("zero-value MergeBytes must error")
		}
	})
	t.Run("unknown format tag", func(t *testing.T) {
		if _, err := agm.NewForestSketch(16, 1).MarshalBinaryFormat(7); !errors.Is(err, agm.ErrBadEncoding) {
			t.Fatalf("MarshalBinaryFormat(7) = %v, want ErrBadEncoding", err)
		}
		// A payload whose per-bank tag byte is unknown must error on decode.
		mut := append([]byte(nil), payload...)
		mut[28] = 0xEE // first bank's format tag (after the 28-byte header)
		var got ConnectivitySketch
		mustBad(t, got.UnmarshalBinary(mut))
	})
	t.Run("oversized header rejected before allocation", func(t *testing.T) {
		// Patch the header to declare n = 2^24 (plausible per-field, an
		// ~0.5 TiB sketch in aggregate): the decode-cell budget must
		// refuse it without constructing anything.
		mut := append([]byte(nil), payload...)
		binary.LittleEndian.PutUint64(mut[4:], 1<<24)
		var got ConnectivitySketch
		mustBad(t, got.UnmarshalBinary(mut))
	})
}
