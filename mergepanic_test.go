package graphsketch

import (
	"testing"

	"graphsketch/internal/l0"
	"graphsketch/internal/sketchcore"
	"graphsketch/internal/sparserec"
)

// TestIncompatibleMergePanicMessages pins the shared convention for
// incompatible-merge panics across the three cell-bank layers: the message
// is "<pkg>: incompatible merge: <dimension> mismatch", naming the first
// mismatching dimension, so an operator mixing sketches from misconfigured
// sites sees WHICH parameter diverged rather than a generic complaint.
func TestIncompatibleMergePanicMessages(t *testing.T) {
	mustPanic := func(t *testing.T, want string, f func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("expected panic %q, got none", want)
			}
			if got, ok := r.(string); !ok || got != want {
				t.Fatalf("panic = %v, want %q", r, want)
			}
		}()
		f()
	}

	cases := []struct {
		name string
		want string
		run  func()
	}{
		{
			"l0 universe", "l0: incompatible merge: universe mismatch",
			func() { l0.New(1<<10, 1).Add(l0.New(1<<12, 1)) },
		},
		{
			"l0 reps", "l0: incompatible merge: reps mismatch",
			func() { l0.NewWithReps(1<<10, 1, 4).Add(l0.NewWithReps(1<<10, 1, 5)) },
		},
		{
			"l0 seed", "l0: incompatible merge: seed mismatch",
			func() { l0.New(1<<10, 1).Add(l0.New(1<<10, 2)) },
		},
		{
			"sparserec k", "sparserec: incompatible merge: k mismatch",
			func() { sparserec.New(4, 1).Add(sparserec.New(8, 1)) },
		},
		{
			"sparserec seed", "sparserec: incompatible merge: seed mismatch",
			func() { sparserec.New(4, 1).Add(sparserec.New(4, 2)) },
		},
		{
			"sparserec bank n", "sparserec: incompatible merge: n mismatch",
			func() { sparserec.NewBank(4, 2, 1).Add(sparserec.NewBank(5, 2, 1)) },
		},
		{
			"sparserec bank seed", "sparserec: incompatible merge: seed mismatch",
			func() { sparserec.NewBank(4, 2, 1).Add(sparserec.NewBank(4, 2, 9)) },
		},
		{
			"sketchcore slots", "sketchcore: incompatible merge: slots mismatch",
			func() {
				a := sketchcore.New(sketchcore.Config{Slots: 4, Universe: 16, Reps: 2, Seed: 1})
				a.Add(sketchcore.New(sketchcore.Config{Slots: 5, Universe: 16, Reps: 2, Seed: 1}))
			},
		},
		{
			"sketchcore reps", "sketchcore: incompatible merge: reps mismatch",
			func() {
				a := sketchcore.New(sketchcore.Config{Slots: 4, Universe: 16, Reps: 2, Seed: 1})
				a.Add(sketchcore.New(sketchcore.Config{Slots: 4, Universe: 16, Reps: 3, Seed: 1}))
			},
		},
		{
			"sketchcore universe", "sketchcore: incompatible merge: universe mismatch",
			func() {
				a := sketchcore.New(sketchcore.Config{Slots: 4, Universe: 16, Reps: 2, Seed: 1})
				a.Add(sketchcore.New(sketchcore.Config{Slots: 4, Universe: 17, Reps: 2, Seed: 1}))
			},
		},
		{
			"sketchcore seed", "sketchcore: incompatible merge: seed mismatch",
			func() {
				a := sketchcore.New(sketchcore.Config{Slots: 4, Universe: 16, Reps: 2, Seed: 1})
				a.Add(sketchcore.New(sketchcore.Config{Slots: 4, Universe: 16, Reps: 2, Seed: 2}))
			},
		},
		{
			"sketchcore mode", "sketchcore: incompatible merge: seeding mode mismatch",
			func() {
				a := sketchcore.New(sketchcore.Config{Slots: 2, Universe: 16, Reps: 2, Seed: 1})
				a.Add(sketchcore.New(sketchcore.Config{Slots: 2, Universe: 16, Reps: 2, SlotSeeds: []uint64{1, 2}}))
			},
		},
		{
			"sketchcore slot seeds", "sketchcore: incompatible merge: slot seeds mismatch",
			func() {
				a := sketchcore.New(sketchcore.Config{Slots: 2, Universe: 16, Reps: 2, SlotSeeds: []uint64{1, 2}})
				a.Add(sketchcore.New(sketchcore.Config{Slots: 2, Universe: 16, Reps: 2, SlotSeeds: []uint64{1, 3}}))
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { mustPanic(t, tc.want, tc.run) })
	}
}
