package graphsketch

import "testing"

// spannerGraphsEqual compares exact weighted edge sets.
func spannerGraphsEqual(t *testing.T, name string, a, b *Graph) {
	t.Helper()
	ae, be := a.Edges(), b.Edges()
	if len(ae) != len(be) {
		t.Fatalf("%s: %d edges vs %d", name, len(ae), len(be))
	}
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("%s: edge %d differs: %+v vs %+v", name, i, ae[i], be[i])
		}
	}
}

// TestSpannerSketchMatchesOneShot: the incremental sketches must build
// exactly what the one-shot functions build from the same stream, however
// the updates arrive.
func TestSpannerSketchMatchesOneShot(t *testing.T) {
	st := GNP(48, 0.25, 7)
	wantBS := BaswanaSenSpanner(st, 3, 11)
	bs := NewBaswanaSenSketch(st.N, 3, 11)
	for i, up := range st.Updates {
		if i%2 == 0 {
			bs.Update(up.U, up.V, up.Delta)
		} else {
			bs.UpdateBatch([]Update{up})
		}
	}
	gotBS := bs.Build()
	spannerGraphsEqual(t, "baswana-sen", gotBS.Spanner, wantBS.Spanner)
	if gotBS.Passes != wantBS.Passes || gotBS.PlanEdges != wantBS.PlanEdges {
		t.Fatalf("diagnostics differ: %+v vs %+v", gotBS.Passes, wantBS.Passes)
	}
	if len(gotBS.PhaseNanos) != gotBS.Passes {
		t.Fatalf("%d phase timings for %d passes", len(gotBS.PhaseNanos), gotBS.Passes)
	}

	wantRC := RecurseConnectSpanner(st, 4, 13)
	rc := NewRecurseConnectSketch(st.N, 4, 13)
	rc.Ingest(st)
	gotRC := rc.Build()
	spannerGraphsEqual(t, "recurse-connect", gotRC.Spanner, wantRC.Spanner)
}

// TestSpannerSketchMemoization: repeated builds serve the cached result;
// an update invalidates it; rebuilding after a cancelling pair restores the
// original spanner bit for bit (linearity).
func TestSpannerSketchMemoization(t *testing.T) {
	st := GNP(40, 0.3, 17)
	bs := NewBaswanaSenSketch(st.N, 3, 19)
	bs.Ingest(st)
	first := bs.Build()
	if again := bs.Build(); again.Spanner != first.Spanner {
		t.Fatal("repeated Build must serve the memoized graph")
	}
	bs.Update(0, 1, 1)
	afterUpdate := bs.Build()
	if afterUpdate.Spanner == first.Spanner {
		t.Fatal("Update must invalidate the memoized spanner")
	}
	bs.Update(0, 1, -1) // cancel: the sketched graph is back to the original
	restored := bs.Build()
	spannerGraphsEqual(t, "restored", restored.Spanner, first.Spanner)

	rc := NewRecurseConnectSketch(st.N, 4, 23)
	rc.Ingest(st)
	firstRC := rc.Build()
	if again := rc.Build(); again.Spanner != firstRC.Spanner {
		t.Fatal("repeated RC Build must serve the memoized graph")
	}
	rc.Update(2, 3, 1)
	if rc.Build().Spanner == firstRC.Spanner {
		t.Fatal("RC Update must invalidate the memoized spanner")
	}
}

// TestSpannerSketchFootprint: after a build the retained arenas report a
// plausible occupancy-aware footprint.
func TestSpannerSketchFootprint(t *testing.T) {
	st := GNP(40, 0.3, 29)
	bs := NewBaswanaSenSketch(st.N, 3, 31)
	bs.Ingest(st)
	bs.Build()
	f := bs.Footprint()
	if f.ResidentBytes <= 0 || f.TotalCells <= 0 || f.WireDenseBytes <= 0 {
		t.Fatalf("implausible BS footprint %+v", f)
	}
	if f.NonzeroCells <= 0 || f.NonzeroCells > f.TotalCells {
		t.Fatalf("implausible BS occupancy %+v", f)
	}
	rc := NewRecurseConnectSketch(st.N, 4, 31)
	rc.Ingest(st)
	rc.Build()
	if f := rc.Footprint(); f.ResidentBytes <= 0 || f.TotalCells <= 0 {
		t.Fatalf("implausible RC footprint %+v", f)
	}
}
