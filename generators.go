package graphsketch

import "graphsketch/internal/stream"

// Workload generators re-exported for examples and downstream users. All
// return replayable dynamic streams (see Stream).

// GNP returns an Erdos-Renyi G(n, p) insertion stream.
func GNP(n int, p float64, seed uint64) *Stream { return stream.GNP(n, p, seed) }

// Complete returns the complete graph K_n.
func Complete(n int) *Stream { return stream.Complete(n) }

// Cycle returns the n-cycle.
func Cycle(n int) *Stream { return stream.Cycle(n) }

// Path returns the n-path.
func Path(n int) *Stream { return stream.Path(n) }

// Grid returns the rows x cols grid graph.
func Grid(rows, cols int) *Stream { return stream.Grid(rows, cols) }

// Barbell returns two cliques joined by `bridges` edges (min cut exactly
// bridges).
func Barbell(n, bridges int) *Stream { return stream.Barbell(n, bridges) }

// PlantedPartition returns a k-community graph with edge probability pIn
// inside communities and pOut across.
func PlantedPartition(n, k int, pIn, pOut float64, seed uint64) *Stream {
	return stream.PlantedPartition(n, k, pIn, pOut, seed)
}

// PreferentialAttachment returns a Barabasi-Albert style graph (m edges per
// new node).
func PreferentialAttachment(n, m int, seed uint64) *Stream {
	return stream.PreferentialAttachment(n, m, seed)
}

// WeightedGNP returns a G(n, p) stream whose update deltas are uniform
// weights in [1, maxW].
func WeightedGNP(n int, p float64, maxW int64, seed uint64) *Stream {
	return stream.WeightedGNP(n, p, maxW, seed)
}

// Star returns the star graph with center 0.
func Star(n int) *Stream { return stream.Star(n) }

// DisjointCliques returns k disjoint cliques of size n/k.
func DisjointCliques(n, k int) *Stream { return stream.DisjointCliques(n, k) }

// UniformUpdates returns a length-m dynamic stream of uniform random edge
// updates (~90% inserts, ~10% cancelling deletions) — the
// ingest-throughput benchmark workload.
func UniformUpdates(n, m int, seed uint64) *Stream { return stream.UniformUpdates(n, m, seed) }

// BipartiteRandom returns a random bipartite graph with edge probability p.
func BipartiteRandom(n int, p float64, seed uint64) *Stream {
	return stream.BipartiteRandom(n, p, seed)
}
