package graphsketch

import (
	"math"
	"testing"
)

// Facade-level integration tests: every public type exercised end to end
// through the same entry points the examples use.

func TestConnectivityFacade(t *testing.T) {
	s := DisjointCliques(30, 3)
	c := NewConnectivitySketch(30, 1)
	c.Ingest(s)
	if c.Connected() {
		t.Fatal("three cliques are not connected")
	}
	if got := c.Components(); got != 3 {
		t.Fatalf("components = %d, want 3", got)
	}
	forest := c.SpanningForest()
	if len(forest) != 27 {
		t.Fatalf("forest edges = %d, want 27", len(forest))
	}
}

func TestConnectivityDistributedMerge(t *testing.T) {
	s := Cycle(40)
	parts := s.Partition(4, 9)
	merged := NewConnectivitySketch(40, 5)
	for _, p := range parts {
		site := NewConnectivitySketch(40, 5)
		site.Ingest(p)
		merged.Add(site)
	}
	if !merged.Connected() {
		t.Fatal("merged sites must see the connected cycle")
	}
}

func TestBipartitenessFacade(t *testing.T) {
	b := NewBipartitenessSketch(12, 2)
	b.Ingest(Cycle(12))
	if !b.Bipartite() {
		t.Fatal("even cycle is bipartite")
	}
	b2 := NewBipartitenessSketch(13, 3)
	b2.Ingest(Cycle(13))
	if b2.Bipartite() {
		t.Fatal("odd cycle is not bipartite")
	}
}

func TestMinCutFacade(t *testing.T) {
	s := Barbell(16, 2)
	m := NewMinCutSketchK(16, 8, 7)
	m.Ingest(s)
	res, err := m.MinCut()
	if err != nil || res.Value != 2 {
		t.Fatalf("min cut: got (%d, %v), want 2", res.Value, err)
	}
	if m.Words() <= 0 {
		t.Fatal("Words must be positive")
	}
}

func TestSparsifierFacade(t *testing.T) {
	s := PlantedPartition(24, 2, 0.8, 0.1, 11)
	g := FromStream(s)
	sp := NewSparsifier(24, 0.5, 13)
	sp.Ingest(s)
	h, err := sp.Sparsify()
	if err != nil {
		t.Fatal(err)
	}
	if MaxCutError(g, h, 30, 17) > 0.6 {
		t.Fatal("sparsifier too inaccurate")
	}
}

func TestSimpleSparsifierFacade(t *testing.T) {
	s := GNP(20, 0.4, 19)
	g := FromStream(s)
	sp := NewSimpleSparsifier(20, 0.5, 23)
	sp.Ingest(s)
	h, err := sp.Sparsify()
	if err != nil {
		t.Fatal(err)
	}
	if MaxCutError(g, h, 30, 29) > 0.6 {
		t.Fatal("simple sparsifier too inaccurate")
	}
}

func TestWeightedSparsifierFacade(t *testing.T) {
	s := WeightedGNP(20, 0.5, 8, 31)
	g := FromStream(s)
	sp := NewWeightedSparsifier(20, 0.5, 8, 37)
	sp.Ingest(s)
	h, err := sp.Sparsify()
	if err != nil {
		t.Fatal(err)
	}
	if MaxCutError(g, h, 30, 41) > 0.7 {
		t.Fatal("weighted sparsifier too inaccurate")
	}
}

func TestSubgraphFacade(t *testing.T) {
	s := GNP(20, 0.35, 43)
	g := FromStream(s)
	sk := NewSubgraphSketch(20, 3, 150, 47)
	sk.Ingest(s)
	gamma, eff := sk.Gamma(PatternTriangle)
	if eff < 100 {
		t.Fatalf("effective samples %d too few", eff)
	}
	exactTriangles := float64(ExactTriangles(g))
	estimate := sk.Count(PatternTriangle)
	if exactTriangles > 20 && math.Abs(estimate-exactTriangles)/exactTriangles > 0.6 {
		t.Fatalf("triangle count %v vs exact %v (gamma=%v)", estimate, exactTriangles, gamma)
	}
}

func TestSpannerFacades(t *testing.T) {
	s := GNP(50, 0.25, 53)
	g := FromStream(s)
	bs := BaswanaSenSpanner(s, 3, 59)
	if bs.Passes != 3 {
		t.Fatalf("BS passes = %d, want 3", bs.Passes)
	}
	if st := MeasureStretch(g, bs.Spanner, 10, 61); st > bs.StretchBound {
		t.Fatalf("BS stretch %.2f > bound %.2f", st, bs.StretchBound)
	}
	rc := RecurseConnectSpanner(s, 4, 67)
	if rc.Passes > 3 {
		t.Fatalf("RC passes = %d, want <= log2(4)+1 = 3", rc.Passes)
	}
	if st := MeasureStretch(g, rc.Spanner, 10, 71); st > rc.StretchBound {
		t.Fatalf("RC stretch %.2f > bound %.2f", st, rc.StretchBound)
	}
}

func TestMSTFacade(t *testing.T) {
	s := WeightedGNP(20, 0.4, 8, 91)
	g := FromStream(s)
	_, exact := g.MinimumSpanningForest()
	sk := NewMSTSketch(20, 8, 93)
	sk.Ingest(s)
	forest, total := sk.ApproxMSF()
	_, cc := g.Components()
	if len(forest) != 20-cc {
		t.Fatalf("forest edges %d, want n-cc = %d", len(forest), 20-cc)
	}
	if total < exact || total > 2*exact {
		t.Fatalf("MSF weight %d outside [exact, 2*exact] = [%d, %d]", total, exact, 2*exact)
	}
}

func TestDynamicScenarioEndToEnd(t *testing.T) {
	// A full dynamic session: build communities, bridge them, churn, then
	// cut the bridge — tracked by connectivity + min-cut sketches.
	n := 20
	s := DisjointCliques(n, 2)
	s.Updates = append(s.Updates, Update{U: 0, V: 10, Delta: 1}) // bridge
	s = s.WithChurn(1000, 73)

	conn := NewConnectivitySketch(n, 79)
	conn.Ingest(s)
	if !conn.Connected() {
		t.Fatal("bridged cliques should be connected")
	}

	mc := NewMinCutSketchK(n, 6, 83)
	mc.Ingest(s)
	res, err := mc.MinCut()
	if err != nil || res.Value != 1 {
		t.Fatalf("bridge min cut: got (%d, %v), want 1", res.Value, err)
	}

	// Now cut the bridge.
	s.Updates = append(s.Updates, Update{U: 0, V: 10, Delta: -1})
	conn2 := NewConnectivitySketch(n, 89)
	conn2.Ingest(s)
	if conn2.Connected() {
		t.Fatal("after deleting the bridge the graph splits")
	}
}
