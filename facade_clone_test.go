package graphsketch

import (
	"bytes"
	"testing"
)

// TestFacadeCloneIndependence pins the epoch-snapshot contract on the
// facade Clone hooks: a clone captures the sketch's exact state (compact
// bytes identical), and further updates to the original never perturb the
// clone (and vice versa). This is the primitive the concurrent service's
// query-while-ingesting path is built on.
func TestFacadeCloneIndependence(t *testing.T) {
	const n, seed = 48, 11
	st := GNP(n, 0.15, seed).WithChurn(200, seed^0x5eed)
	half := st.Updates[:len(st.Updates)/2]
	rest := st.Updates[len(st.Updates)/2:]

	marshal := func(t *testing.T, m interface{ MarshalBinaryCompact() ([]byte, error) }) []byte {
		t.Helper()
		b, err := m.MarshalBinaryCompact()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}

	t.Run("connectivity", func(t *testing.T) {
		sk := NewConnectivitySketch(n, seed)
		sk.UpdateBatch(half)
		cl := sk.Clone()
		at := marshal(t, sk)
		if got := marshal(t, cl); !bytes.Equal(got, at) {
			t.Fatal("clone bytes differ from original at clone point")
		}
		sk.UpdateBatch(rest)
		if got := marshal(t, cl); !bytes.Equal(got, at) {
			t.Fatal("updating the original perturbed the clone")
		}
		cl.Update(0, 1, 5)
		full := NewConnectivitySketch(n, seed)
		full.UpdateBatch(st.Updates)
		if got, want := marshal(t, sk), marshal(t, full); !bytes.Equal(got, want) {
			t.Fatal("updating the clone perturbed the original")
		}
	})

	t.Run("mincut", func(t *testing.T) {
		sk := NewMinCutSketchK(n, 4, seed)
		sk.UpdateBatch(half)
		cl := sk.Clone()
		at := marshal(t, sk)
		sk.UpdateBatch(rest)
		if got := marshal(t, cl); !bytes.Equal(got, at) {
			t.Fatal("updating the original perturbed the clone")
		}
		// The clone answers queries for its epoch while the original moved on.
		res, err := cl.MinCut()
		if err != nil {
			t.Fatalf("clone MinCut: %v", err)
		}
		ref := NewMinCutSketchK(n, 4, seed)
		ref.UpdateBatch(half)
		want, err := ref.MinCut()
		if err != nil {
			t.Fatalf("ref MinCut: %v", err)
		}
		if res.Value != want.Value {
			t.Fatalf("clone MinCut = %d, want %d (epoch state leaked)", res.Value, want.Value)
		}
	})

	t.Run("simple-sparsifier", func(t *testing.T) {
		sk := NewSimpleSparsifier(n, 1.0, seed)
		sk.UpdateBatch(half)
		cl := sk.Clone()
		at := marshal(t, sk)
		sk.UpdateBatch(rest)
		if got := marshal(t, cl); !bytes.Equal(got, at) {
			t.Fatal("updating the original perturbed the clone")
		}
		if _, err := cl.Sparsify(); err != nil {
			t.Fatalf("clone Sparsify: %v", err)
		}
	})
}
